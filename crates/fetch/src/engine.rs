//! The trace-driven fetch engine: walks a program's dynamic block trace
//! through the cache/ATB/buffer models with Table-1 cycle accounting and
//! reports IPC (operations delivered per cycle) plus every component's
//! hit statistics and the bus power figures.

use crate::atb::Atb;
use crate::buffer::{L0Buffer, DEFAULT_L0_OPS};
use crate::cache::{BankedCache, CacheConfig};
use crate::gshare::Gshare;
use crate::penalty::{Outcome, PenaltyTable};
use crate::power::BusModel;
use ccc_core::failpoint::{sites, Failpoints};
use ccc_core::schemes::{BlockCodec, BlockDecodeError, BlockRequest};
use ccc_core::{AddressTranslationTable, EncodedProgram};
use ccc_telemetry::{EventCounts, FetchEventKind, MetricsRegistry, TraceEvent, TraceSink};
use tepic_isa::Program;
use tinker_huffman::DecodeCounters;
use yula::BlockTrace;

/// Which fetch organization to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodingClass {
    /// Uncompressed baseline (banked cache, predictor, no translation).
    Base,
    /// Tailored ISA (extra miss-path stage, translation via ATB).
    Tailored,
    /// Huffman-compressed code cached compressed (decompressor on the
    /// hit path behind the L0 buffer, translation via ATB).
    Compressed,
    /// Perfect cache and predictor: one MultiOp per cycle.
    Ideal,
}

/// Which next-block predictor the ATB couples to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// The paper's baseline: per-entry 2-bit counter + last target.
    AtbTwoBit,
    /// Future-work extension: gshare direction predictor (global history
    /// XOR block id) with the ATB supplying targets.
    Gshare {
        /// log2 of the pattern table size.
        history_bits: u32,
    },
}

/// Full configuration of one simulation.
#[derive(Debug, Clone)]
pub struct FetchConfig {
    /// Fetch organization.
    pub class: EncodingClass,
    /// ICache geometry.
    pub cache: CacheConfig,
    /// ATB capacity in blocks.
    pub atb_entries: usize,
    /// Extra cycles to pull an ATT entry on an ATB miss (translated
    /// encodings only — Base keeps original addresses).
    pub atb_miss_penalty: u32,
    /// L0 buffer capacity in ops (Compressed only).
    pub l0_ops: u32,
    /// The Table-1 column.
    pub penalties: PenaltyTable,
    /// Next-block prediction mechanism.
    pub predictor: PredictorKind,
}

impl FetchConfig {
    /// The paper's Base configuration: 20KB 2-way, 30-byte lines.
    pub fn base() -> FetchConfig {
        FetchConfig {
            class: EncodingClass::Base,
            cache: CacheConfig::base(),
            atb_entries: 64,
            atb_miss_penalty: 0,
            l0_ops: DEFAULT_L0_OPS,
            penalties: PenaltyTable::base(),
            predictor: PredictorKind::AtbTwoBit,
        }
    }

    /// The paper's Tailored configuration: 16KB 2-way.
    pub fn tailored() -> FetchConfig {
        FetchConfig {
            class: EncodingClass::Tailored,
            cache: CacheConfig::compact(),
            atb_entries: 64,
            atb_miss_penalty: 2,
            l0_ops: DEFAULT_L0_OPS,
            penalties: PenaltyTable::tailored(),
            predictor: PredictorKind::AtbTwoBit,
        }
    }

    /// The paper's Compressed configuration: 16KB 2-way + 32-op L0.
    pub fn compressed() -> FetchConfig {
        FetchConfig {
            class: EncodingClass::Compressed,
            cache: CacheConfig::compact(),
            atb_entries: 64,
            atb_miss_penalty: 2,
            l0_ops: DEFAULT_L0_OPS,
            penalties: PenaltyTable::compressed(),
            predictor: PredictorKind::AtbTwoBit,
        }
    }

    /// Perfect-everything upper bound.
    pub fn ideal() -> FetchConfig {
        FetchConfig {
            class: EncodingClass::Ideal,
            ..FetchConfig::base()
        }
    }

    /// Scaled variant preserving the paper's pressure ratios.
    ///
    /// The paper runs SPEC-class binaries (hundreds of KB) against 16KB
    /// (20KB Base) caches and a 64-entry ATB over thousands of blocks.
    /// Our workloads are smaller, so the cache scales with the *base*
    /// image size: the Base cache gets `base_code_bytes × ratio` (the
    /// default [`FetchConfig::SCALED_RATIO`]), the compact caches keep
    /// the paper's 16:20 capacity relation, and the 64-entry ATB keeps
    /// the paper's "very low contention" property (it covers every block
    /// of our workloads, as the paper's covers SPEC's hot blocks). Line sizes, the L0 buffer and every Table-1 penalty are
    /// unchanged. See DESIGN.md §4 (substitutions).
    pub fn scaled(class: EncodingClass, base_code_bytes: usize) -> FetchConfig {
        let mut cfg = match class {
            EncodingClass::Base => FetchConfig::base(),
            EncodingClass::Tailored => FetchConfig::tailored(),
            EncodingClass::Compressed => FetchConfig::compressed(),
            EncodingClass::Ideal => return FetchConfig::ideal(),
        };
        let base_capacity =
            ((base_code_bytes as f64 * Self::SCALED_RATIO) as usize).max(8 * cfg.cache.line_bytes);
        cfg.cache.capacity = match class {
            EncodingClass::Base => base_capacity,
            _ => base_capacity * 16 / 20,
        };

        cfg
    }

    /// Cache capacity as a fraction of the Base code size in scaled
    /// configurations (the paper's 20KB vs SPEC-sized-code pressure
    /// point, transposed).
    pub const SCALED_RATIO: f64 = 0.3;
}

/// Everything a simulation run measures.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchResult {
    /// Configuration label.
    pub class: EncodingClass,
    /// Total fetch cycles.
    pub cycles: u64,
    /// Operations delivered.
    pub ops: u64,
    /// MultiOps delivered.
    pub mops: u64,
    /// Correctly predicted block transitions.
    pub pred_correct: u64,
    /// Mispredicted block transitions.
    pub pred_wrong: u64,
    /// ICache hits / misses (block granularity).
    pub cache_hits: u64,
    /// ICache misses.
    pub cache_misses: u64,
    /// L0 buffer hits (Compressed only).
    pub buffer_hits: u64,
    /// L0 buffer misses.
    pub buffer_misses: u64,
    /// ATB hits.
    pub atb_hits: u64,
    /// ATB misses.
    pub atb_misses: u64,
    /// Memory-bus beats.
    pub bus_beats: u64,
    /// Memory-bus bit flips (the Figure-14 power proxy).
    pub bus_bit_flips: u64,
    /// Integrity-check failures observed on the fetch path: ATT entries
    /// failing their CRC-8 self-check when the ATB loads them, and block
    /// payloads failing parity when their lines arrive from memory. Zero
    /// on an uncorrupted image.
    pub integrity_faults: u64,
}

impl FetchResult {
    /// Operations delivered per cycle — the Figure-13 metric.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops as f64 / self.cycles as f64
        }
    }

    /// Branch prediction accuracy.
    pub fn pred_accuracy(&self) -> f64 {
        let t = self.pred_correct + self.pred_wrong;
        if t == 0 {
            0.0
        } else {
            self.pred_correct as f64 / t as f64
        }
    }

    /// ICache hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        let t = self.cache_hits + self.cache_misses;
        if t == 0 {
            0.0
        } else {
            self.cache_hits as f64 / t as f64
        }
    }

    /// ATB hit rate (Figure 7's "ATB characteristics").
    pub fn atb_hit_rate(&self) -> f64 {
        let t = self.atb_hits + self.atb_misses;
        if t == 0 {
            0.0
        } else {
            self.atb_hits as f64 / t as f64
        }
    }

    /// Folds every counter into `registry` under `fetch.*` names, so a
    /// run's results land in the same snapshot as the engine and decode
    /// telemetry (`results/METRICS_<scheme>.json`).
    pub fn record_metrics(&self, registry: &MetricsRegistry) {
        for (name, v) in [
            ("fetch.cycles", self.cycles),
            ("fetch.ops", self.ops),
            ("fetch.mops", self.mops),
            ("fetch.pred_correct", self.pred_correct),
            ("fetch.pred_wrong", self.pred_wrong),
            ("fetch.cache_hits", self.cache_hits),
            ("fetch.cache_misses", self.cache_misses),
            ("fetch.buffer_hits", self.buffer_hits),
            ("fetch.buffer_misses", self.buffer_misses),
            ("fetch.atb_hits", self.atb_hits),
            ("fetch.atb_misses", self.atb_misses),
            ("fetch.bus_beats", self.bus_beats),
            ("fetch.bus_bit_flips", self.bus_bit_flips),
            ("fetch.integrity_faults", self.integrity_faults),
        ] {
            registry.counter(name).add(v);
        }
    }
}

/// Decompressor activity observed when a [`BlockCodec`] rides along via
/// [`simulate_decoded`]. The decompressor engages on every L0 buffer
/// miss of the Compressed class (paper §4: the buffer sits in front of
/// it precisely to keep it off the common path), so these counters
/// measure how much actual Huffman decode work the fetch path performs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Blocks run through the decompressor.
    pub blocks_decoded: u64,
    /// Operations reconstructed by those decodes.
    pub ops_decoded: u64,
    /// Decodes that errored or reconstructed the wrong op words. Zero on
    /// a clean image.
    pub decode_errors: u64,
    /// Codewords that overflowed the simulator's first-level decode LUT
    /// into the bit-serial reference walk (the "Long" path) — a software
    /// fast-path quality measure, not a modelled-hardware cost.
    pub long_fallbacks: u64,
    /// Total codeword bits consumed — one Figure-9 tree level per bit,
    /// so this is the modelled serial-decoder stall-cycle count.
    pub stall_bits: u64,
    /// Whole-block decodes whose LUT fast path errored and were retried
    /// one-shot through the bit-serial reference decoder (graceful
    /// degradation, DESIGN.md §13). A block only lands in
    /// `decode_errors` if the reference path failed too.
    pub reference_fallbacks: u64,
}

impl DecodeStats {
    /// Folds the counters into `registry` under `decode.*` names.
    pub fn record_metrics(&self, registry: &MetricsRegistry) {
        for (name, v) in [
            ("decode.blocks_decoded", self.blocks_decoded),
            ("decode.ops_decoded", self.ops_decoded),
            ("decode.decode_errors", self.decode_errors),
            ("decode.long_fallbacks", self.long_fallbacks),
            ("decode.stall_bits", self.stall_bits),
            ("decode.reference_fallbacks", self.reference_fallbacks),
        ] {
            registry.counter(name).add(v);
        }
    }
}

/// Runs one configuration over a program, its encoded image and its
/// dynamic trace. The ATT is built from the image as given — for fault
/// studies where the ROM image may differ from what the compiler saw,
/// use [`simulate_with_att`] with the compile-time table.
pub fn simulate(
    program: &Program,
    image: &EncodedProgram,
    trace: &BlockTrace,
    config: &FetchConfig,
) -> FetchResult {
    let att = AddressTranslationTable::build(program, image);
    simulate_with_att(program, image, &att, trace, config)
}

/// [`simulate`] with an explicit Address Translation Table. The table
/// carries the integrity metadata (per-block parity, entry CRC-8) the
/// compiler recorded; passing the clean-build table against a corrupted
/// `image` is how fault-injection studies observe `integrity_faults`.
pub fn simulate_with_att(
    program: &Program,
    image: &EncodedProgram,
    att: &AddressTranslationTable,
    trace: &BlockTrace,
    config: &FetchConfig,
) -> FetchResult {
    simulate_inner(program, image, att, trace, config, None, None, None)
}

/// [`simulate`] with structured event tracing: every per-block pipeline
/// event (cache hit/miss with its bank, ATB hit/miss, predictor
/// outcome, L0 hit/fill, decode stall, integrity fault) is recorded
/// into `sink`, stamped with the simulated cycle. The [`FetchResult`]
/// is **identical** to the untraced run — tracing observes, never
/// steers — and before returning, the engine asserts that the traced
/// event counts reconcile exactly with the result's own counters.
pub fn simulate_traced(
    program: &Program,
    image: &EncodedProgram,
    trace: &BlockTrace,
    config: &FetchConfig,
    sink: &mut dyn TraceSink,
) -> FetchResult {
    let att = AddressTranslationTable::build(program, image);
    simulate_inner(program, image, &att, trace, config, None, None, Some(sink))
}

/// [`simulate_decoded`] with structured event tracing — see
/// [`simulate_traced`]. Both the [`FetchResult`] and the
/// [`DecodeStats`] are identical to the untraced run.
pub fn simulate_decoded_traced(
    program: &Program,
    image: &EncodedProgram,
    trace: &BlockTrace,
    config: &FetchConfig,
    codec: &dyn BlockCodec,
    sink: &mut dyn TraceSink,
) -> (FetchResult, DecodeStats) {
    let att = AddressTranslationTable::build(program, image);
    let mut stats = DecodeStats::default();
    let r = simulate_inner(
        program,
        image,
        &att,
        trace,
        config,
        Some((codec, &mut stats)),
        None,
        Some(sink),
    );
    (r, stats)
}

/// [`simulate`] with the real decompressor on the fetch path: whenever
/// the Compressed class misses the L0 buffer, the block is actually
/// decoded through `codec` and checked against the program. Cycle
/// accounting is untouched — Table 1 already prices the decompressor —
/// so the [`FetchResult`] is identical to [`simulate`]'s; the extra
/// [`DecodeStats`] report the decode work and any corruption it caught.
pub fn simulate_decoded(
    program: &Program,
    image: &EncodedProgram,
    trace: &BlockTrace,
    config: &FetchConfig,
    codec: &dyn BlockCodec,
) -> (FetchResult, DecodeStats) {
    let att = AddressTranslationTable::build(program, image);
    let mut stats = DecodeStats::default();
    let r = simulate_inner(
        program,
        image,
        &att,
        trace,
        config,
        Some((codec, &mut stats)),
        None,
        None,
    );
    (r, stats)
}

/// [`simulate_decoded`] with a [`Failpoints`] registry armed on the LUT
/// decode fast path (site `decode.lut`): each injected fault forces the
/// primary decode to error, exercising the one-shot fallback to the
/// bit-serial reference decoder. The [`FetchResult`] is identical to
/// the clean run's — degradation changes *how* a block is decoded,
/// never what the fetch path observes — while
/// [`DecodeStats::reference_fallbacks`] records every rescue.
pub fn simulate_decoded_injected(
    program: &Program,
    image: &EncodedProgram,
    trace: &BlockTrace,
    config: &FetchConfig,
    codec: &dyn BlockCodec,
    failpoints: &Failpoints,
) -> (FetchResult, DecodeStats) {
    let att = AddressTranslationTable::build(program, image);
    let mut stats = DecodeStats::default();
    let r = simulate_inner(
        program,
        image,
        &att,
        trace,
        config,
        Some((codec, &mut stats)),
        Some(failpoints),
        None,
    );
    (r, stats)
}

/// One block through the decompressor with the healing protocol every
/// decoded path shares: an armed `decode.lut` failpoint forces the fast
/// path to error, any fast-path error takes the one-shot retry down the
/// bit-serial reference decoder (graceful degradation, DESIGN.md §13 —
/// the reference shares no lookup tables with the LUT, so a corrupted
/// table cannot poison both), and the decoded words are checked against
/// the program. A block only lands in `decode_errors` if both paths
/// reject it (genuinely corrupt bytes).
fn decode_block_healed(
    codec: &dyn BlockCodec,
    program: &Program,
    image: &EncodedProgram,
    block: usize,
    num_ops: usize,
    stats: &mut DecodeStats,
    failpoints: Option<&Failpoints>,
) -> Result<Vec<u64>, BlockDecodeError> {
    stats.blocks_decoded += 1;
    let mut counters = DecodeCounters::default();
    let primary = if failpoints.is_some_and(|fp| fp.check(sites::DECODE_LUT).is_some()) {
        Err(BlockDecodeError::BadValue {
            field: "injected failpoint: decode.lut",
        })
    } else {
        codec.decode_block_counted(image, block, num_ops, &mut counters)
    };
    let decoded = primary.or_else(|_| {
        stats.reference_fallbacks += 1;
        codec.decode_block_reference(image, block, num_ops)
    });
    note_decoded(&decoded, program, block, num_ops, stats);
    stats.long_fallbacks += counters.long_fallbacks;
    stats.stall_bits += counters.stall_bits;
    decoded
}

/// Post-decode accounting shared by the healed paths: tally the ops and
/// flag a decode error when the block errored or reconstructed the
/// wrong words.
fn note_decoded(
    decoded: &Result<Vec<u64>, BlockDecodeError>,
    program: &Program,
    block: usize,
    num_ops: usize,
    stats: &mut DecodeStats,
) {
    match decoded {
        Ok(words) => {
            stats.ops_decoded += words.len() as u64;
            let ok = words
                .iter()
                .zip(program.block_ops(block))
                .all(|(&w, op)| w == op.encode());
            if !ok || words.len() != num_ops {
                stats.decode_errors += 1;
            }
        }
        Err(_) => stats.decode_errors += 1,
    }
}

/// Decodes every block of `image` through one
/// [`BlockCodec::decode_batch`] call — the interleaved throughput tier
/// (DESIGN.md §15) — under the same healing protocol as
/// [`simulate_decoded`]: blocks whose armed `decode.lut` failpoint
/// fires are rerouted to the bit-serial reference decoder before the
/// batch is formed, batch lanes that error take the same one-shot
/// reference retry, and every decode is checked against the program.
/// Returns the per-block results in block order plus [`DecodeStats`]
/// with exactly the per-miss path's semantics
/// (`reference_fallbacks` counts each rescue).
pub fn batch_decode_image(
    program: &Program,
    image: &EncodedProgram,
    codec: &dyn BlockCodec,
    failpoints: Option<&Failpoints>,
) -> (Vec<Result<Vec<u64>, BlockDecodeError>>, DecodeStats) {
    let mut stats = DecodeStats::default();
    let mut counters = DecodeCounters::default();
    let num_blocks = program.num_blocks();
    let mut results: Vec<Option<Result<Vec<u64>, BlockDecodeError>>> = vec![None; num_blocks];
    let mut requests = Vec::with_capacity(num_blocks);
    for (block, info) in program.blocks().iter().enumerate() {
        if failpoints.is_some_and(|fp| fp.check(sites::DECODE_LUT).is_some()) {
            // The failpoint kills this block's fast path: heal it on
            // the spot so the batch carries only clean fast-path lanes.
            stats.blocks_decoded += 1;
            stats.reference_fallbacks += 1;
            let decoded = codec.decode_block_reference(image, block, info.num_ops);
            note_decoded(&decoded, program, block, info.num_ops, &mut stats);
            results[block] = Some(decoded);
        } else {
            requests.push(BlockRequest {
                block,
                num_ops: info.num_ops,
            });
        }
    }
    let batched = codec.decode_batch(image, &requests, &mut counters);
    for (q, res) in requests.iter().zip(batched) {
        stats.blocks_decoded += 1;
        let decoded = res.or_else(|_| {
            stats.reference_fallbacks += 1;
            codec.decode_block_reference(image, q.block, q.num_ops)
        });
        note_decoded(&decoded, program, q.block, q.num_ops, &mut stats);
        results[q.block] = Some(decoded);
    }
    stats.long_fallbacks += counters.long_fallbacks;
    stats.stall_bits += counters.stall_bits;
    let results = results
        .into_iter()
        .map(|r| r.expect("every block decoded"))
        .collect();
    (results, stats)
}

/// Event recorder threaded through the traced runs: forwards each event
/// to the sink while tallying per-kind counts for the post-run
/// reconciliation check. Only constructed when a sink is supplied, so
/// untraced runs execute the exact pre-telemetry path.
struct Tracer<'s> {
    sink: &'s mut dyn TraceSink,
    counts: EventCounts,
}

impl Tracer<'_> {
    fn fetch(&mut self, seq: u64, cycle: u64, block: u32, kind: FetchEventKind) {
        let ev = TraceEvent::Fetch {
            seq,
            cycle,
            block,
            kind,
        };
        self.counts.add(&ev);
        self.sink.record(ev);
    }
}

#[allow(clippy::too_many_arguments)]
fn simulate_inner(
    program: &Program,
    image: &EncodedProgram,
    att: &AddressTranslationTable,
    trace: &BlockTrace,
    config: &FetchConfig,
    mut decode: Option<(&dyn BlockCodec, &mut DecodeStats)>,
    failpoints: Option<&Failpoints>,
    sink: Option<&mut dyn TraceSink>,
) -> FetchResult {
    let mut tracer = sink.map(|sink| Tracer {
        sink,
        counts: EventCounts::default(),
    });
    let mut atb = Atb::new(config.atb_entries);
    let mut gshare = match config.predictor {
        PredictorKind::Gshare { history_bits } => Some(Gshare::new(history_bits)),
        PredictorKind::AtbTwoBit => None,
    };
    let mut cache = BankedCache::new(config.cache);
    let mut buffer = L0Buffer::new(config.l0_ops);
    let mut bus = BusModel::new();
    let compressed = config.class == EncodingClass::Compressed;
    let translated = matches!(
        config.class,
        EncodingClass::Compressed | EncodingClass::Tailored
    );

    let mut r = FetchResult {
        class: config.class,
        cycles: 0,
        ops: 0,
        mops: 0,
        pred_correct: 0,
        pred_wrong: 0,
        cache_hits: 0,
        cache_misses: 0,
        buffer_hits: 0,
        buffer_misses: 0,
        atb_hits: 0,
        atb_misses: 0,
        bus_beats: 0,
        bus_bit_flips: 0,
        integrity_faults: 0,
    };

    // What the previous block's predictor said the current block would be
    // (None for the very first block: treated as predicted — cold start).
    let mut predicted_cur: Option<u32> = None;

    let mut seq = 0u64;
    for (cur, next) in trace.transitions() {
        seq += 1;
        let info = &program.blocks()[cur as usize];
        r.ops += info.num_ops as u64;
        r.mops += info.num_mops as u64;

        if config.class == EncodingClass::Ideal {
            r.cycles += info.num_mops as u64;
            continue;
        }

        let predicted = predicted_cur.is_none_or(|p| p == cur);
        if predicted_cur.is_some() {
            if predicted {
                r.pred_correct += 1;
            } else {
                r.pred_wrong += 1;
            }
            if let Some(t) = tracer.as_mut() {
                let kind = if predicted {
                    FetchEventKind::PredCorrect
                } else {
                    FetchEventKind::PredWrong
                };
                t.fetch(seq, r.cycles, cur, kind);
            }
        }

        let entry = att.lookup(cur as usize);
        let atb_hit = atb.access(cur, entry);
        if let Some(t) = tracer.as_mut() {
            let kind = if atb_hit {
                FetchEventKind::AtbHit
            } else {
                FetchEventKind::AtbMiss {
                    penalty: if translated {
                        config.atb_miss_penalty
                    } else {
                        0
                    },
                }
            };
            t.fetch(seq, r.cycles, cur, kind);
        }
        if translated && !atb_hit {
            r.cycles += config.atb_miss_penalty as u64;
            // The entry just arrived from code memory: run its CRC-8
            // self-check before letting it steer the fetch.
            if !entry.self_check() {
                r.integrity_faults += 1;
                if let Some(t) = tracer.as_mut() {
                    t.fetch(seq, r.cycles, cur, FetchEventKind::IntegrityFault);
                }
            }
        }

        let (start, end) = image.block_range(cur as usize);
        let lines = config.cache.lines_spanned(start, end);

        // The L0 buffer has priority over the main cache (paper §4): a
        // buffer hit never touches the cache or the bus.
        let buffer_hit = compressed && buffer.access(cur, info.num_ops as u32);
        if compressed {
            if let Some(t) = tracer.as_mut() {
                let kind = if buffer_hit {
                    FetchEventKind::L0Hit
                } else {
                    FetchEventKind::L0Fill {
                        ops: info.num_ops as u32,
                    }
                };
                t.fetch(seq, r.cycles, cur, kind);
            }
        }
        if compressed && !buffer_hit {
            // The decompressor engages: the block's compressed bits —
            // whether they come from the cache or from memory — are
            // decoded into the buffer before ops can issue.
            if let Some((codec, stats)) = decode.as_mut() {
                let _ = decode_block_healed(
                    *codec,
                    program,
                    image,
                    cur as usize,
                    info.num_ops,
                    stats,
                    failpoints,
                );
            }
        }
        // Bank of the block's first line: lines interleave across the
        // two banks of the Figure-8 fetch design.
        let bank = ((start / config.cache.line_bytes as u64) % 2) as u8;
        let cache_hit = if buffer_hit {
            true
        } else {
            let access = cache.access_block(start, end);
            if let Some(t) = tracer.as_mut() {
                let kind = if access.hit {
                    FetchEventKind::CacheHit { bank }
                } else {
                    FetchEventKind::CacheMiss {
                        bank,
                        lines: access.fetched_lines.len() as u32,
                    }
                };
                t.fetch(seq, r.cycles, cur, kind);
            }
            for &l in &access.fetched_lines {
                bus.transfer_line(&image.bytes, l, config.cache.line_bytes);
            }
            // Lines came in from ROM: check the block payload against
            // the parity recorded in its ATT entry.
            if translated
                && !access.hit
                && !entry.verify_payload(&image.bytes[start as usize..end as usize])
            {
                r.integrity_faults += 1;
                if let Some(t) = tracer.as_mut() {
                    t.fetch(seq, r.cycles, cur, FetchEventKind::IntegrityFault);
                }
            }
            access.hit
        };

        let pen = config.penalties.penalty(Outcome {
            predicted,
            cache_hit,
            buffer_hit,
        });
        if compressed && !buffer_hit {
            // The Table-1 penalty charged on an L0 fill is the modelled
            // fetch+decompress stall for this block.
            if let Some(t) = tracer.as_mut() {
                t.fetch(
                    seq,
                    r.cycles,
                    cur,
                    FetchEventKind::DecodeStall {
                        cycles: pen.cycles(lines),
                    },
                );
            }
        }
        r.cycles += pen.cycles(lines) as u64 + (info.num_mops as u64).saturating_sub(1);

        // Predict the next block from this block's entry, then train.
        if let Some(n) = next {
            predicted_cur = Some(match &gshare {
                Some(g) => {
                    if g.predict_taken(cur) {
                        atb.last_target(cur).unwrap_or(cur + 1)
                    } else {
                        cur + 1
                    }
                }
                None => atb.predict_next(cur),
            });
            if let Some(g) = &mut gshare {
                g.train(cur, n != cur + 1);
            }
            atb.train(cur, n);
        }
    }

    r.cache_hits = cache.hits();
    r.cache_misses = cache.misses();
    r.buffer_hits = buffer.hits();
    r.buffer_misses = buffer.misses();
    r.atb_hits = atb.hits();
    r.atb_misses = atb.misses();
    r.bus_beats = bus.beats();
    r.bus_bit_flips = bus.bit_flips();

    // Traced runs must reconcile exactly: every counter the components
    // accumulated has a matching stream of recorded events. A mismatch
    // means an emission site drifted from the model — fail loudly.
    if let Some(t) = &tracer {
        let c = &t.counts;
        let pairs = [
            ("cache_hits", c.cache_hits, r.cache_hits),
            ("cache_misses", c.cache_misses, r.cache_misses),
            ("buffer_hits", c.buffer_hits, r.buffer_hits),
            ("buffer_misses", c.buffer_misses, r.buffer_misses),
            ("atb_hits", c.atb_hits, r.atb_hits),
            ("atb_misses", c.atb_misses, r.atb_misses),
            ("pred_correct", c.pred_correct, r.pred_correct),
            ("pred_wrong", c.pred_wrong, r.pred_wrong),
            ("integrity_faults", c.integrity_faults, r.integrity_faults),
            // Every L0 fill engages the decompressor exactly once.
            ("decode_stalls", c.decode_stalls, r.buffer_misses),
        ];
        for (name, traced, counted) in pairs {
            assert_eq!(
                traced, counted,
                "trace/counter divergence on {name}: {traced} events vs {counted} counted"
            );
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccc_core::schemes::{
        base::encode_base, full::FullScheme, tailored::TailoredScheme, Scheme,
    };
    use yula::{Emulator, Limits};

    struct Setup {
        program: Program,
        trace: BlockTrace,
        base_img: EncodedProgram,
        tail_img: EncodedProgram,
        comp_img: EncodedProgram,
    }

    fn setup(src: &str) -> Setup {
        let program = lego::compile(src, &lego::Options::default()).unwrap();
        let run = Emulator::new(&program).run(&Limits::default()).unwrap();
        let base_img = encode_base(&program);
        let tail_img = TailoredScheme.compress(&program).unwrap().image;
        let comp_img = FullScheme::default().compress(&program).unwrap().image;
        Setup {
            program,
            trace: run.trace,
            base_img,
            tail_img,
            comp_img,
        }
    }

    fn loopy() -> Setup {
        setup(
            r#"
            global a[64];
            fn main() {
                var i; var j; var s = 0;
                for (i = 0; i < 40; i = i + 1) {
                    for (j = 0; j < 40; j = j + 1) {
                        s = s + (i ^ j);
                        if (s > 100000) { s = s - 100000; }
                    }
                    a[i] = s;
                }
                print(s);
            }
        "#,
        )
    }

    #[test]
    fn ideal_bounds_everything() {
        let s = loopy();
        let ideal = simulate(&s.program, &s.base_img, &s.trace, &FetchConfig::ideal());
        let base = simulate(&s.program, &s.base_img, &s.trace, &FetchConfig::base());
        let tail = simulate(&s.program, &s.tail_img, &s.trace, &FetchConfig::tailored());
        let comp = simulate(
            &s.program,
            &s.comp_img,
            &s.trace,
            &FetchConfig::compressed(),
        );
        assert!(ideal.ipc() >= base.ipc());
        assert!(ideal.ipc() >= tail.ipc());
        assert!(ideal.ipc() >= comp.ipc());
        assert!(ideal.ipc() <= 6.0 + 1e-9, "issue width bounds the ideal");
        // All deliver the same instruction stream.
        assert_eq!(ideal.ops, base.ops);
        assert_eq!(base.ops, tail.ops);
        assert_eq!(base.ops, comp.ops);
    }

    #[test]
    fn tight_loop_warms_every_structure() {
        let s = loopy();
        let base = simulate(&s.program, &s.base_img, &s.trace, &FetchConfig::base());
        assert!(
            base.cache_hit_rate() > 0.95,
            "hot loop should hit: {}",
            base.cache_hit_rate()
        );
        assert!(
            base.pred_accuracy() > 0.7,
            "2-bit counters learn loops: {}",
            base.pred_accuracy()
        );
        let comp = simulate(
            &s.program,
            &s.comp_img,
            &s.trace,
            &FetchConfig::compressed(),
        );
        assert!(
            comp.atb_hit_rate() > 0.9,
            "ATB contention is low: {}",
            comp.atb_hit_rate()
        );
        assert!(
            comp.buffer_hits + comp.buffer_misses > 0,
            "compressed path exercises the buffer"
        );
    }

    #[test]
    fn compression_reduces_bus_traffic() {
        // Figure 14's shape: compressed encodings move fewer bits for
        // the same instruction stream.
        let s = loopy();
        let base = simulate(&s.program, &s.base_img, &s.trace, &FetchConfig::base());
        let tail = simulate(&s.program, &s.tail_img, &s.trace, &FetchConfig::tailored());
        let comp = simulate(
            &s.program,
            &s.comp_img,
            &s.trace,
            &FetchConfig::compressed(),
        );
        assert!(
            tail.bus_beats <= base.bus_beats,
            "tailored beats {} vs base {}",
            tail.bus_beats,
            base.bus_beats
        );
        assert!(
            comp.bus_beats <= base.bus_beats,
            "compressed beats {} vs base {}",
            comp.bus_beats,
            base.bus_beats
        );
    }

    #[test]
    fn cycles_monotone_in_penalties() {
        // Same trace and image under a strictly costlier table must not
        // get faster.
        let s = loopy();
        let cheap = simulate(
            &s.program,
            &s.tail_img,
            &s.trace,
            &FetchConfig {
                penalties: PenaltyTable::base(),
                ..FetchConfig::tailored()
            },
        );
        let costly = simulate(&s.program, &s.tail_img, &s.trace, &FetchConfig::tailored());
        assert!(costly.cycles >= cheap.cycles);
    }

    #[test]
    fn deterministic() {
        let s = loopy();
        let a = simulate(
            &s.program,
            &s.comp_img,
            &s.trace,
            &FetchConfig::compressed(),
        );
        let b = simulate(
            &s.program,
            &s.comp_img,
            &s.trace,
            &FetchConfig::compressed(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn clean_image_reports_no_integrity_faults() {
        let s = loopy();
        for (img, cfg) in [
            (&s.base_img, FetchConfig::base()),
            (&s.tail_img, FetchConfig::tailored()),
            (&s.comp_img, FetchConfig::compressed()),
        ] {
            let r = simulate(&s.program, img, &s.trace, &cfg);
            assert_eq!(r.integrity_faults, 0, "{:?}", cfg.class);
        }
    }

    #[test]
    fn corrupted_payload_is_caught_by_parity() {
        let s = loopy();
        // The compiler recorded parity over the clean image; the ROM
        // then corrupts one bit of the hottest block's payload.
        let att = AddressTranslationTable::build(&s.program, &s.comp_img);
        let hot = s.trace.transitions().next().unwrap().0 as usize;
        let (start, _) = s.comp_img.block_range(hot);
        let mut bad = s.comp_img.clone();
        bad.bytes[start as usize] ^= 0x40;
        let r = simulate_with_att(&s.program, &bad, &att, &s.trace, &FetchConfig::compressed());
        assert!(
            r.integrity_faults > 0,
            "flipped payload bit must fail parity on the miss path"
        );
        // The clean image against its own table stays silent.
        let ok = simulate_with_att(
            &s.program,
            &s.comp_img,
            &att,
            &s.trace,
            &FetchConfig::compressed(),
        );
        assert_eq!(ok.integrity_faults, 0);
    }

    #[test]
    fn corrupted_att_entry_fails_self_check_on_load() {
        let s = loopy();
        let mut att = AddressTranslationTable::build(&s.program, &s.comp_img);
        let hot = s.trace.transitions().next().unwrap().0 as usize;
        // Corrupt the stored entry without refreshing its CRC-8.
        att.entries_mut()[hot].num_mops ^= 1;
        let r = simulate_with_att(
            &s.program,
            &s.comp_img,
            &att,
            &s.trace,
            &FetchConfig::compressed(),
        );
        assert!(
            r.integrity_faults > 0,
            "corrupt entry must fail its self-check when the ATB loads it"
        );
    }

    #[test]
    fn decoded_run_matches_plain_run_and_decodes_cleanly() {
        let s = loopy();
        let out = FullScheme::default().compress(&s.program).unwrap();
        let plain = simulate(&s.program, &out.image, &s.trace, &FetchConfig::compressed());
        let (decoded, stats) = simulate_decoded(
            &s.program,
            &out.image,
            &s.trace,
            &FetchConfig::compressed(),
            out.codec.as_ref(),
        );
        // Decoding rides along without disturbing any accounting.
        assert_eq!(decoded, plain);
        // Every buffer miss ran the decompressor, and every decode was
        // clean and complete.
        assert_eq!(stats.blocks_decoded, plain.buffer_misses);
        assert!(stats.ops_decoded > 0, "hot loop must decode some ops");
        assert_eq!(stats.decode_errors, 0);
    }

    #[test]
    fn decoded_run_catches_corrupted_block() {
        let s = loopy();
        let out = FullScheme::default().compress(&s.program).unwrap();
        let hot = s.trace.transitions().next().unwrap().0 as usize;
        let (start, _) = out.image.block_range(hot);
        let mut bad = out.image.clone();
        bad.bytes[start as usize] ^= 0x40;
        let (_, stats) = simulate_decoded(
            &s.program,
            &bad,
            &s.trace,
            &FetchConfig::compressed(),
            out.codec.as_ref(),
        );
        assert!(
            stats.decode_errors > 0,
            "flipped payload bit must surface as a decode error"
        );
    }

    #[test]
    fn injected_lut_faults_fall_back_to_reference_decoder() {
        let s = loopy();
        let out = FullScheme::default().compress(&s.program).unwrap();
        let (clean, clean_stats) = simulate_decoded(
            &s.program,
            &out.image,
            &s.trace,
            &FetchConfig::compressed(),
            out.codec.as_ref(),
        );
        let fp = ccc_core::Failpoints::from_spec("decode.lut:1.0:error", 7).unwrap();
        let (healed, stats) = simulate_decoded_injected(
            &s.program,
            &out.image,
            &s.trace,
            &FetchConfig::compressed(),
            out.codec.as_ref(),
            &fp,
        );
        // Every block decode hit the injected fault and degraded to the
        // bit-serial reference path, with no visible effect on the run.
        assert_eq!(healed, clean);
        assert_eq!(stats.reference_fallbacks, stats.blocks_decoded);
        assert_eq!(stats.blocks_decoded, clean_stats.blocks_decoded);
        assert_eq!(stats.reference_fallbacks, fp.total_fired());
        assert_eq!(stats.decode_errors, 0);
    }

    #[test]
    fn batch_decode_matches_per_block_decode_for_every_scheme() {
        use ccc_core::schemes::{byte::ByteScheme, pair::PairScheme, stream::StreamScheme};
        let s = loopy();
        let schemes: Vec<Box<dyn Scheme>> = vec![
            Box::new(FullScheme::default()),
            Box::new(ByteScheme::default()),
            Box::new(StreamScheme::named("stream").unwrap()),
            Box::new(StreamScheme::named("stream_1").unwrap()),
            Box::new(PairScheme::default()),
        ];
        for scheme in schemes {
            let out = scheme.compress(&s.program).unwrap();
            let (results, stats) =
                batch_decode_image(&s.program, &out.image, out.codec.as_ref(), None);
            assert_eq!(results.len(), s.program.num_blocks());
            let mut seq = DecodeCounters::default();
            for (b, info) in s.program.blocks().iter().enumerate() {
                let want = out
                    .codec
                    .decode_block_counted(&out.image, b, info.num_ops, &mut seq)
                    .unwrap();
                assert_eq!(
                    results[b].as_ref().unwrap(),
                    &want,
                    "{}: block {b} batch/sequential mismatch",
                    scheme.name()
                );
            }
            assert_eq!(stats.blocks_decoded, s.program.num_blocks() as u64);
            assert_eq!(stats.ops_decoded, s.program.num_ops() as u64);
            assert_eq!(stats.decode_errors, 0, "{}", scheme.name());
            assert_eq!(stats.reference_fallbacks, 0, "{}", scheme.name());
            // Interleaved counters fold to the sequential totals.
            assert_eq!(
                stats.long_fallbacks,
                seq.long_fallbacks,
                "{}",
                scheme.name()
            );
            assert_eq!(stats.stall_bits, seq.stall_bits, "{}", scheme.name());
        }
    }

    #[test]
    fn batch_decode_heals_injected_lut_faults() {
        let s = loopy();
        let out = FullScheme::default().compress(&s.program).unwrap();
        let fp = ccc_core::Failpoints::from_spec("decode.lut:1.0:error", 7).unwrap();
        let (results, stats) =
            batch_decode_image(&s.program, &out.image, out.codec.as_ref(), Some(&fp));
        // Every block's fast path was killed and rerouted to the
        // reference decoder before the batch formed; nothing is lost.
        assert_eq!(stats.reference_fallbacks, stats.blocks_decoded);
        assert_eq!(stats.reference_fallbacks, fp.total_fired());
        assert_eq!(stats.decode_errors, 0);
        for (b, info) in s.program.blocks().iter().enumerate() {
            let words = results[b].as_ref().unwrap();
            assert_eq!(words.len(), info.num_ops);
        }
    }

    #[test]
    fn batch_decode_surfaces_corruption_after_reference_retry() {
        let s = loopy();
        let out = FullScheme::default().compress(&s.program).unwrap();
        let hot = s.trace.transitions().next().unwrap().0 as usize;
        let (start, _) = out.image.block_range(hot);
        let mut bad = out.image.clone();
        bad.bytes[start as usize] ^= 0x40;
        let (_, stats) = batch_decode_image(&s.program, &bad, out.codec.as_ref(), None);
        // The corrupted lane takes its one-shot reference retry (which
        // cannot help — the bits themselves are wrong) and is flagged.
        assert!(stats.reference_fallbacks >= 1 || stats.decode_errors >= 1);
        assert!(stats.decode_errors >= 1, "corruption must be flagged");
    }

    #[test]
    fn non_compressed_class_never_engages_decompressor() {
        let s = loopy();
        let out = FullScheme::default().compress(&s.program).unwrap();
        let (_, stats) = simulate_decoded(
            &s.program,
            &s.base_img,
            &s.trace,
            &FetchConfig::base(),
            out.codec.as_ref(),
        );
        assert_eq!(stats, DecodeStats::default());
    }

    #[test]
    fn traced_run_is_identical_and_reconciles_for_every_class() {
        use ccc_telemetry::{NoopSink, RingSink};
        let s = loopy();
        for (img, cfg) in [
            (&s.base_img, FetchConfig::base()),
            (&s.tail_img, FetchConfig::tailored()),
            (&s.comp_img, FetchConfig::compressed()),
            (&s.base_img, FetchConfig::ideal()),
        ] {
            let plain = simulate(&s.program, img, &s.trace, &cfg);
            let mut ring = RingSink::new(1 << 22);
            let traced = simulate_traced(&s.program, img, &s.trace, &cfg, &mut ring);
            assert_eq!(traced, plain, "{:?}: tracing must not steer", cfg.class);
            let c = ring.counts();
            assert_eq!(c.cache_hits, plain.cache_hits, "{:?}", cfg.class);
            assert_eq!(c.cache_misses, plain.cache_misses, "{:?}", cfg.class);
            assert_eq!(c.buffer_hits, plain.buffer_hits, "{:?}", cfg.class);
            assert_eq!(c.buffer_misses, plain.buffer_misses, "{:?}", cfg.class);
            assert_eq!(c.atb_hits, plain.atb_hits, "{:?}", cfg.class);
            assert_eq!(c.atb_misses, plain.atb_misses, "{:?}", cfg.class);
            assert_eq!(c.pred_correct, plain.pred_correct, "{:?}", cfg.class);
            assert_eq!(c.pred_wrong, plain.pred_wrong, "{:?}", cfg.class);
            assert_eq!(c.integrity_faults, 0, "{:?}", cfg.class);
            if cfg.class == EncodingClass::Ideal {
                assert_eq!(c.total(), 0, "ideal fetch touches no structure");
            } else {
                assert!(!ring.is_empty(), "{:?} must record events", cfg.class);
            }
            // The no-op sink works too (and discards everything).
            let mut noop = NoopSink;
            let quiet = simulate_traced(&s.program, img, &s.trace, &cfg, &mut noop);
            assert_eq!(quiet, plain);
        }
    }

    #[test]
    fn traced_decoded_run_reports_decode_effort() {
        use ccc_telemetry::RingSink;
        let s = loopy();
        let out = FullScheme::default().compress(&s.program).unwrap();
        let (plain, plain_stats) = simulate_decoded(
            &s.program,
            &out.image,
            &s.trace,
            &FetchConfig::compressed(),
            out.codec.as_ref(),
        );
        let mut ring = RingSink::new(1 << 22);
        let (traced, stats) = simulate_decoded_traced(
            &s.program,
            &out.image,
            &s.trace,
            &FetchConfig::compressed(),
            out.codec.as_ref(),
            &mut ring,
        );
        assert_eq!(traced, plain);
        assert_eq!(stats, plain_stats);
        assert_eq!(stats.decode_errors, 0);
        assert!(
            stats.stall_bits > 0,
            "huffman decode must consume codeword bits"
        );
        // One decode-stall event per L0 fill, by construction.
        assert_eq!(ring.counts().decode_stalls, traced.buffer_misses);
        // Metrics recording is total-preserving.
        let reg = MetricsRegistry::new();
        traced.record_metrics(&reg);
        stats.record_metrics(&reg);
        assert_eq!(reg.counter("fetch.cycles").get(), traced.cycles);
        assert_eq!(reg.counter("decode.stall_bits").get(), stats.stall_bits);
    }

    #[test]
    fn branchy_code_mispredicts_more_than_straight() {
        let straight = setup(
            "fn main() { var i; var s = 0; for (i = 0; i < 2000; i = i + 1) { s = s + i; } print(s); }",
        );
        let branchy = setup(
            r#"
            fn main() {
                var i; var s = 0; var v = 12345;
                for (i = 0; i < 2000; i = i + 1) {
                    v = (v * 1103 + 12345) % 65536;
                    if (v % 2 == 0) { s = s + 1; } else { s = s - 1; }
                }
                print(s);
            }
        "#,
        );
        let a = simulate(
            &straight.program,
            &straight.base_img,
            &straight.trace,
            &FetchConfig::base(),
        );
        let b = simulate(
            &branchy.program,
            &branchy.base_img,
            &branchy.trace,
            &FetchConfig::base(),
        );
        assert!(
            b.pred_accuracy() < a.pred_accuracy(),
            "random branches must hurt: {} vs {}",
            b.pred_accuracy(),
            a.pred_accuracy()
        );
    }
}
