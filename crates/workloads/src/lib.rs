//! # tinker-workloads — the benchmark suite
//!
//! Eight benchmark programs written in the Tink language, standing in for
//! the SPECint95-class suite of the paper's evaluation (Figure 13 names
//! `compress`, `go`, `ijpeg` and `m88ksim`; the rest of the usual suite
//! rounds out the set). SPEC sources cannot be shipped; each stand-in
//! implements the same *algorithmic family*, so the static op mix, block
//! sizes and branch behaviour — the properties the paper's results
//! depend on — are exercised realistically:
//!
//! | name | family |
//! |---|---|
//! | `compress` | LZW compression + decompression with lossless verification |
//! | `gcc` | recursive-descent parsing + RPN codegen + constant folding |
//! | `go` | board game: recursive flood fill, captures, greedy search |
//! | `ijpeg` | 8×8 float DCT/IDCT codec: quantize, zigzag, RLE, error measure |
//! | `li` | cons-cell Lisp kernel: map/filter/reduce + tree evaluator |
//! | `m88ksim` | a guest RISC instruction-set simulator |
//! | `perl` | word splitting, hashing, backtracking glob matching |
//! | `vortex` | hash-indexed object store with chained buckets |
//!
//! # Example
//!
//! ```
//! let w = tinker_workloads::by_name("compress").unwrap();
//! let (program, result) = w.compile_and_run().unwrap();
//! assert!(program.num_ops() > 0);
//! assert!(!result.output.is_empty());
//! ```

use std::fmt;
use tepic_isa::Program;
use yula::{Emulator, Limits, RunResult};

/// One benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// SPECint95-style name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    source: &'static str,
}

/// Failure while building or running a workload.
#[derive(Debug)]
pub enum WorkloadError {
    /// The Tink source failed to compile (a bug in this crate).
    Compile(lego::CompileError),
    /// The program faulted or exceeded its budget.
    Run(yula::EmuError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Compile(e) => write!(f, "compile: {e}"),
            WorkloadError::Run(e) => write!(f, "run: {e}"),
        }
    }
}

impl std::error::Error for WorkloadError {}

impl Workload {
    /// Builds a workload from explicit parts — the benchmark suite uses
    /// the [`ALL`] table, but harness tests (e.g. the engine's
    /// failure-path coverage) need workloads with sources of their own.
    pub const fn custom(
        name: &'static str,
        description: &'static str,
        source: &'static str,
    ) -> Workload {
        Workload {
            name,
            description,
            source,
        }
    }

    /// Builds a workload from owned parts by leaking them into
    /// `'static` storage. The prepared-workload engine and the
    /// [`ALL`] table traffic in `&'static Workload`, so dynamically
    /// produced programs (the `ccc-workgen` synthetic corpus) go
    /// through here; corpora are bounded, so the leak is too.
    pub fn leaked(name: String, description: String, source: String) -> &'static Workload {
        Box::leak(Box::new(Workload {
            name: Box::leak(name.into_boxed_str()),
            description: Box::leak(description.into_boxed_str()),
            source: Box::leak(source.into_boxed_str()),
        }))
    }

    /// The Tink source text.
    pub fn source(&self) -> &'static str {
        self.source
    }

    /// Stable fingerprint of the workload's identity and source text.
    /// This is what the artifact cache keys on: editing a benchmark's
    /// `.tink` source changes the fingerprint and invalidates every
    /// artifact derived from it.
    pub fn fingerprint(&self) -> u64 {
        let mut buf = Vec::with_capacity(self.name.len() + self.source.len() + 1);
        buf.extend_from_slice(self.name.as_bytes());
        buf.push(0);
        buf.extend_from_slice(self.source.as_bytes());
        tepic_isa::wire::fnv1a64(&buf)
    }

    /// Compiles with the default (optimizing) LEGO options.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Compile`] on pipeline failure.
    pub fn compile(&self) -> Result<Program, WorkloadError> {
        lego::compile(self.source, &lego::Options::default()).map_err(WorkloadError::Compile)
    }

    /// Compiles with explicit options.
    ///
    /// # Errors
    ///
    /// As [`Workload::compile`].
    pub fn compile_with(&self, opts: &lego::Options) -> Result<Program, WorkloadError> {
        lego::compile(self.source, opts).map_err(WorkloadError::Compile)
    }

    /// Compiles and executes, returning the program and its run result
    /// (output + block trace + stats).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] for compile or runtime failures.
    pub fn compile_and_run(&self) -> Result<(Program, RunResult), WorkloadError> {
        let p = self.compile()?;
        let r = Emulator::new(&p)
            .run(&Limits::default())
            .map_err(WorkloadError::Run)?;
        Ok((p, r))
    }
}

/// All eight workloads, in the order the figures list them.
pub const ALL: [Workload; 8] = [
    Workload {
        name: "compress",
        description: "LZW compression + decompression with lossless verification",
        source: include_str!("programs/compress.tink"),
    },
    Workload {
        name: "gcc",
        description: "expression parsing, RPN codegen and constant folding",
        source: include_str!("programs/gcc.tink"),
    },
    Workload {
        name: "go",
        description: "9x9 territory game with recursive capture search",
        source: include_str!("programs/go.tink"),
    },
    Workload {
        name: "ijpeg",
        description: "8x8 float DCT/IDCT codec with quantization and error measure",
        source: include_str!("programs/ijpeg.tink"),
    },
    Workload {
        name: "li",
        description: "cons-cell Lisp kernel with a recursive tree evaluator",
        source: include_str!("programs/li.tink"),
    },
    Workload {
        name: "m88ksim",
        description: "guest RISC instruction-set simulator",
        source: include_str!("programs/m88ksim.tink"),
    },
    Workload {
        name: "perl",
        description: "word splitting, hashing and backtracking glob matching",
        source: include_str!("programs/perl.tink"),
    },
    Workload {
        name: "vortex",
        description: "hash-indexed object store with chained buckets",
        source: include_str!("programs/vortex.tink"),
    },
];

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<&'static Workload> {
    ALL.iter().find(|w| w.name == name)
}

/// The benchmark names, comma-separated in figure order — what CLI
/// `--workload` failure paths print so a typo'd flag reports the whole
/// menu instead of a bare miss.
pub fn known_names() -> String {
    ALL.iter().map(|w| w.name).collect::<Vec<_>>().join(", ")
}

/// A `--workload` flag naming no known benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkload {
    /// The name that missed.
    pub name: String,
}

impl fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown workload {}; known: {}",
            self.name,
            known_names()
        )
    }
}

impl std::error::Error for UnknownWorkload {}

/// [`by_name`], but the failure path carries the list of known names
/// (for CLI `--workload` flags and other user-facing lookups).
///
/// # Errors
///
/// [`UnknownWorkload`] naming the miss and every known benchmark.
pub fn by_name_or_err(name: &str) -> Result<&'static Workload, UnknownWorkload> {
    by_name(name).ok_or_else(|| UnknownWorkload {
        name: name.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_compile() {
        for w in &ALL {
            let p = w.compile().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(
                p.num_ops() > 100,
                "{} suspiciously small: {} ops",
                w.name,
                p.num_ops()
            );
        }
    }

    #[test]
    fn all_workloads_run_and_produce_output() {
        for w in &ALL {
            let (_, r) = w
                .compile_and_run()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(!r.output.is_empty(), "{} produced no output", w.name);
            assert!(
                r.stats.ops > 5_000,
                "{} trace too small: {} ops",
                w.name,
                r.stats.ops
            );
            assert!(
                r.stats.ops < 100_000_000,
                "{} trace too large: {} ops",
                w.name,
                r.stats.ops
            );
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        for w in &ALL {
            let (_, a) = w.compile_and_run().unwrap();
            let (_, b) = w.compile_and_run().unwrap();
            assert_eq!(a.output, b.output, "{} not deterministic", w.name);
        }
    }

    #[test]
    fn optimization_preserves_behaviour() {
        // The strongest end-to-end compiler check: -O0 and -O2 outputs
        // agree on every workload.
        for w in &ALL {
            let opt = w.compile_and_run().unwrap().1.output;
            let p0 = w
                .compile_with(&lego::Options {
                    optimize: false,
                    ..lego::Options::default()
                })
                .unwrap();
            let unopt = yula::Emulator::new(&p0)
                .run(&yula::Limits::default())
                .unwrap_or_else(|e| panic!("{} unopt: {e}", w.name))
                .output;
            assert_eq!(opt, unopt, "{}: optimizer changed behaviour", w.name);
        }
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for w in &ALL {
            assert_eq!(w.fingerprint(), w.fingerprint(), "{} unstable", w.name);
            assert!(seen.insert(w.fingerprint()), "{} collides", w.name);
        }
        let custom = Workload::custom("compress", "different source", "fn main() { }");
        assert_ne!(
            custom.fingerprint(),
            by_name("compress").unwrap().fingerprint(),
            "source must be part of the fingerprint"
        );
    }

    #[test]
    fn by_name_finds_each() {
        for w in &ALL {
            assert_eq!(by_name(w.name).map(|x| x.name), Some(w.name));
        }
        assert!(by_name("xalancbmk").is_none());
    }

    #[test]
    fn by_name_or_err_reports_known_names() {
        assert_eq!(by_name_or_err("li").unwrap().name, "li");
        let msg = by_name_or_err("xalancbmk").unwrap_err().to_string();
        assert!(msg.contains("xalancbmk"), "names the miss: {msg}");
        for w in &ALL {
            assert!(msg.contains(w.name), "lists {}: {msg}", w.name);
        }
    }

    #[test]
    fn leaked_workload_behaves_like_static() {
        let w = Workload::leaked(
            "leaky".to_string(),
            "leak test".to_string(),
            "fn main() { print(7); }".to_string(),
        );
        assert_eq!(w.name, "leaky");
        let (p, r) = w.compile_and_run().unwrap();
        assert!(p.num_ops() > 0);
        assert!(!r.output.is_empty());
        // Fingerprints hash the leaked source exactly like static ones.
        let twin = Workload::leaked(
            "leaky".to_string(),
            "leak test".to_string(),
            "fn main() { print(7); }".to_string(),
        );
        assert_eq!(w.fingerprint(), twin.fingerprint());
    }

    #[test]
    fn names_match_figure13_set() {
        let names: Vec<&str> = ALL.iter().map(|w| w.name).collect();
        for required in ["compress", "go", "ijpeg", "m88ksim"] {
            assert!(names.contains(&required), "paper names {required}");
        }
        assert_eq!(names.len(), 8);
    }
}
