//! A self-contained, offline subset of the `criterion` benchmarking
//! API. The build environment has no access to crates.io, so this
//! crate provides the slice the workspace's benches use: `Criterion`
//! with `sample_size`/`measurement_time`, benchmark groups,
//! `bench_function`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. It measures wall-clock means only — no
//! statistical analysis, outlier detection, or HTML reports.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Bounds the total time spent measuring one benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            criterion: self,
            _name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    _name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_measured(id, f);
        self
    }

    /// [`Self::bench_function`] that also returns the mean time per
    /// iteration in nanoseconds, for benches that post-process their
    /// measurements (throughput reports, regression gates).
    pub fn bench_measured<F>(&mut self, id: &str, f: F) -> f64
    where
        F: FnMut(&mut Bencher),
    {
        self.run_samples(id, f).0
    }

    /// [`Self::bench_measured`] returning the *best* (minimum) sample's
    /// time per iteration instead of the mean. Interference on a busy
    /// host only ever adds time, so the minimum is the noise-robust
    /// estimator of the routine's own cost — what regression floors
    /// should compare.
    pub fn bench_best<F>(&mut self, id: &str, f: F) -> f64
    where
        F: FnMut(&mut Bencher),
    {
        self.run_samples(id, f).1
    }

    fn run_samples<F>(&mut self, id: &str, mut f: F) -> (f64, f64)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        // Warm-up / calibration: find an iteration count whose batch
        // takes a measurable slice of the budget.
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let budget = self.criterion.measurement_time;
        let samples = self.criterion.sample_size as u32;
        let per_sample = budget / samples.max(1);
        let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        let mut best_ns = f64::INFINITY;
        let started = Instant::now();
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            total_iters += iters;
            best_ns = best_ns.min(b.elapsed.as_nanos() as f64 / iters.max(1) as f64);
            if started.elapsed() > budget {
                break;
            }
        }
        let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
        println!("  {id:<28} {}", format_ns(mean_ns));
        (mean_ns, best_ns)
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine under test.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it the calibrated number of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:8.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions with a shared config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("test");
        g.bench_function("add", |b| b.iter(|| 1u64 + 1));
        g.finish();
    }

    #[test]
    fn runs_a_group() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        trivial(&mut c);
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(5));
        targets = trivial
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }

    #[test]
    fn measured_returns_positive_mean() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        let mut g = c.benchmark_group("measured");
        let ns = g.bench_measured("mul", |b| {
            b.iter(|| std::hint::black_box(17u64).wrapping_mul(3))
        });
        assert!(ns > 0.0);
    }
}
