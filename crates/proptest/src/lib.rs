//! A self-contained, offline subset of the `proptest` API.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the slice of proptest that the workspace's property tests
//! use: [`Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! strategies for integer ranges, tuples and collections,
//! [`prop_oneof!`], [`proptest!`], and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its message and the
//!   deterministic seed, not a minimized input.
//! * **Deterministic.** Each test derives its RNG seed from its own
//!   name, so failures reproduce without a persistence file.
//! * **No `prop_compose!`/regex strategies/filters** — nothing in the
//!   workspace needs them.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic 64-bit RNG (splitmix64). Small state, good diffusion,
/// no external deps.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from an explicit seed.
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Creates an RNG seeded from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> TestRng {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; the case is retried.
    Reject,
    /// An assertion failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Generates any value of a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Primitive types [`any`] can generate.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($n:ident $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// Strategy combinators addressed as `prop::...` by convention.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with lengths drawn from `len`.
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// Generates vectors of `elem` values with a length in `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.len.end - self.len.start).max(1) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed set.
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Picks one of `options` uniformly (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select over empty options");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

/// Uniform choice between same-valued strategies (see [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.arms[rng.below(self.arms.len() as u64) as usize].generate(rng)
    }
}

/// Chooses uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `left != right`\n  left: {:?}\n right: {:?}",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Rejects the current case (retried with fresh input) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Each `fn` runs `cases` times over values
/// drawn from its argument strategies; write `#[test]` on each fn as
/// with the real proptest crate.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block $cfg; $($rest)*);
    };
    (@block $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut attempts: u32 = 0;
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20),
                        "proptest: too many rejected cases in {}",
                        stringify!($name)
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed on case {}:\n{}",
                                stringify!($name),
                                passed,
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&w));
            let x = (1u32..=4).generate(&mut rng);
            assert!((1..=4).contains(&x));
        }
    }

    #[test]
    fn vec_and_select_and_tuple() {
        let mut rng = TestRng::new(9);
        let s = prop::collection::vec((0u8..4, prop::sample::select(vec!['a', 'b'])), 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
            for (n, c) in v {
                assert!(n < 4);
                assert!(c == 'a' || c == 'b');
            }
        }
    }

    #[test]
    fn oneof_and_maps() {
        let mut rng = TestRng::new(11);
        let s = prop_oneof![(0u8..1).prop_map(|_| 10u32), (0u8..1).prop_map(|_| 20u32),];
        let mut seen = [false; 2];
        for _ in 0..100 {
            match s.generate(&mut rng) {
                10 => seen[0] = true,
                20 => seen[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
        let f = (1usize..4).prop_flat_map(|n| prop::collection::vec(0u8..2, n..n + 1));
        for _ in 0..50 {
            let v = f.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(v in prop::collection::vec(0u32..100, 1..10)) {
            prop_assume!(!v.is_empty());
            let max = *v.iter().max().unwrap();
            prop_assert!(max < 100, "max {max} out of range");
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert_ne!(v.len(), 0);
        }
    }
}
