//! Length-limited Huffman code lengths via the package–merge algorithm
//! (Larmore & Hirschberg, 1990).
//!
//! The paper bounds Huffman code lengths so that codes remain compatible
//! with the fetch hardware ("the compiler keeps track of such events and
//! either alternates the compression process … similar to the Bounded
//! Huffman code described by Wolfe", §2.2). Package–merge produces the
//! *optimal* code subject to a maximum length `L` in `O(kL)` time.

use crate::code::HuffmanError;

/// Computes optimal code lengths bounded by `max_len`.
///
/// Returns a vector parallel to `freqs`; zero-frequency symbols get
/// length 0 (no code).
///
/// # Errors
///
/// * [`HuffmanError::EmptyAlphabet`] if every frequency is zero.
/// * [`HuffmanError::BoundTooTight`] if `2^max_len` < number of coded
///   symbols.
pub fn package_merge(freqs: &[u64], max_len: u8) -> Result<Vec<u8>, HuffmanError> {
    let coded: Vec<usize> = (0..freqs.len()).filter(|&s| freqs[s] > 0).collect();
    let k = coded.len();
    if k == 0 {
        return Err(HuffmanError::EmptyAlphabet);
    }
    let mut lengths = vec![0u8; freqs.len()];
    if k == 1 {
        lengths[coded[0]] = 1;
        return Ok(lengths);
    }
    if (max_len as u32 >= 64 || (1u128 << max_len) < k as u128)
        && (1u128 << max_len.min(63)) < k as u128
    {
        return Err(HuffmanError::BoundTooTight {
            max_len,
            symbols: k,
        });
    }

    // Items sorted by frequency. Each package at level l is a set of leaf
    // symbols; we track, for every leaf, how many of the first (2k-2)
    // selected packages contain it — that count is its code length.
    #[derive(Clone)]
    struct Item {
        weight: u64,
        /// Count of each coded-leaf (by index into `coded`) in this package.
        leaves: Vec<u32>,
    }

    let mut sorted: Vec<usize> = (0..k).collect();
    sorted.sort_by_key(|&i| (freqs[coded[i]], i));

    let make_leaf_row = |leaf: usize| -> Item {
        let mut leaves = vec![0u32; k];
        leaves[leaf] = 1;
        Item {
            weight: freqs[coded[leaf]],
            leaves,
        }
    };

    // prev = packages available from the previous (deeper) level.
    let mut prev: Vec<Item> = Vec::new();
    for level in (1..=max_len).rev() {
        let _ = level;
        // Merge leaf items with packages of pairs from prev.
        let mut merged: Vec<Item> = Vec::with_capacity(k + prev.len() / 2);
        let mut li = 0usize; // leaf cursor (over sorted)
        let mut pi = 0usize; // package-pair cursor
        loop {
            let leaf_w = (li < k).then(|| freqs[coded[sorted[li]]]);
            let pack_w =
                (pi + 1 < prev.len()).then(|| prev[pi].weight.saturating_add(prev[pi + 1].weight));
            match (leaf_w, pack_w) {
                (None, None) => break,
                (Some(_), None) => {
                    merged.push(make_leaf_row(sorted[li]));
                    li += 1;
                }
                (None, Some(_)) => {
                    let mut leaves = prev[pi].leaves.clone();
                    for (a, b) in leaves.iter_mut().zip(&prev[pi + 1].leaves) {
                        *a += b;
                    }
                    merged.push(Item {
                        weight: prev[pi].weight.saturating_add(prev[pi + 1].weight),
                        leaves,
                    });
                    pi += 2;
                }
                (Some(lw), Some(pw)) => {
                    if lw <= pw {
                        merged.push(make_leaf_row(sorted[li]));
                        li += 1;
                    } else {
                        let mut leaves = prev[pi].leaves.clone();
                        for (a, b) in leaves.iter_mut().zip(&prev[pi + 1].leaves) {
                            *a += b;
                        }
                        merged.push(Item {
                            weight: prev[pi].weight.saturating_add(prev[pi + 1].weight),
                            leaves,
                        });
                        pi += 2;
                    }
                }
            }
        }
        prev = merged;
    }

    // Select the cheapest 2k-2 packages at the top level.
    let need = 2 * k - 2;
    debug_assert!(prev.len() >= need, "package-merge invariant violated");
    let mut counts = vec![0u32; k];
    for item in prev.iter().take(need) {
        for (c, n) in counts.iter_mut().zip(&item.leaves) {
            *c += n;
        }
    }
    for (i, &sym) in coded.iter().enumerate() {
        debug_assert!(counts[i] >= 1 && counts[i] <= max_len as u32);
        lengths[sym] = counts[i] as u8;
    }
    Ok(lengths)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kraft_ok(lengths: &[u8]) -> bool {
        let sum: f64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| (0.5f64).powi(l as i32))
            .sum();
        sum <= 1.0 + 1e-12
    }

    fn total_bits(freqs: &[u64], lengths: &[u8]) -> u64 {
        freqs.iter().zip(lengths).map(|(&f, &l)| f * l as u64).sum()
    }

    #[test]
    fn unconstrained_bound_matches_huffman() {
        let freqs = [45u64, 13, 12, 16, 9, 5];
        let lens = package_merge(&freqs, 32).unwrap();
        let huff = crate::code::CodeBook::from_freqs(&freqs).unwrap();
        assert_eq!(total_bits(&freqs, &lens), huff.total_bits(&freqs));
    }

    #[test]
    fn respects_tight_bound() {
        let freqs: Vec<u64> = (0..16).map(|i| 1u64 << i).collect();
        let lens = package_merge(&freqs, 5).unwrap();
        assert!(lens.iter().all(|&l| l > 0 && l <= 5));
        assert!(kraft_ok(&lens));
    }

    #[test]
    fn exact_bound_gives_fixed_length_code() {
        let freqs = [1u64, 2, 3, 4];
        let lens = package_merge(&freqs, 2).unwrap();
        assert_eq!(lens, vec![2, 2, 2, 2]);
    }

    #[test]
    fn bound_of_one_with_two_symbols() {
        let lens = package_merge(&[7, 3], 1).unwrap();
        assert_eq!(lens, vec![1, 1]);
    }

    #[test]
    fn too_tight_rejected() {
        assert!(matches!(
            package_merge(&[1, 1, 1], 1),
            Err(HuffmanError::BoundTooTight { .. })
        ));
    }

    #[test]
    fn zero_frequency_symbols_uncoded() {
        let freqs = [4u64, 0, 2, 0, 1];
        let lens = package_merge(&freqs, 8).unwrap();
        assert_eq!(lens[1], 0);
        assert_eq!(lens[3], 0);
        assert!(lens[0] > 0 && lens[2] > 0 && lens[4] > 0);
    }

    #[test]
    fn single_symbol() {
        let lens = package_merge(&[0, 9], 8).unwrap();
        assert_eq!(lens, vec![0, 1]);
    }

    #[test]
    fn optimality_under_bound_beats_naive_truncation() {
        // Package-merge total must be <= any other valid bounded assignment;
        // compare with the fixed-length code as a trivial valid competitor.
        let freqs: Vec<u64> = vec![100, 50, 20, 10, 5, 2, 1, 1];
        let lens = package_merge(&freqs, 4).unwrap();
        assert!(kraft_ok(&lens));
        let fixed_total: u64 = freqs.iter().map(|f| f * 3).sum();
        assert!(total_bits(&freqs, &lens) <= fixed_total);
    }

    #[test]
    fn deterministic() {
        let freqs: Vec<u64> = vec![9, 9, 9, 9, 1, 1, 1, 1];
        assert_eq!(
            package_merge(&freqs, 6).unwrap(),
            package_merge(&freqs, 6).unwrap()
        );
    }
}
