//! Interleaved multi-stream canonical Huffman decoding.
//!
//! A single Huffman stream decodes serially: the length of symbol *i*
//! must be known before the cursor can move to symbol *i+1*, so the
//! table-load → length-extract → consume chain of [`LutDecoder`] is one
//! long dependency chain and the CPU's out-of-order window sits idle.
//! [`InterleavedDecoder`] breaks the chain the same way the paper's
//! hardware does for the stream scheme: it keeps one [`BitReader`]
//! cursor per *lane* (an independent bitstream — a per-field stream or
//! a whole block) and round-robins *bursts* of symbol decodes across
//! the lanes. Within a burst a pinned lane runs a software-pipelined
//! hot loop — one wide refill feeds a run of peek→packed-load→consume
//! steps with the cursor held in registers — and the rotation to the
//! next lane starts a chain with no data dependency on the last, so
//! refills and first-level lookups from different lanes overlap in the
//! out-of-order window instead of serializing. (One symbol per lane
//! per round maximizes overlap on paper but pays per-symbol scheduling
//! costs that dwarf the decode itself; bursts keep the overlap where
//! it matters — across refills — at ~1/[`BURST`] the scheduling cost.)
//!
//! The fast path reads a *packed* first level — `(sym << 8) | len` in a
//! flat `u32` array shared by all tables — and every miss (long code,
//! short stream, corrupt prefix, oversized symbol) delegates the whole
//! symbol to [`LutDecoder::decode_counted`] on the same cursor. Each
//! lane therefore observes exactly the sequence of symbols, cursor
//! positions, [`DecodeError`]s and [`DecodeCounters`] increments that a
//! sequential per-symbol `decode_counted` loop would produce; the
//! counters are additive, so the totals across lanes are identical too.
//! The differential proptests in `tests/proptests.rs` enforce this.
//!
//! With the `simd` feature (x86-64 + AVX2 at runtime), rounds of eight
//! lanes fetch their first-level entries with one
//! `_mm256_i32gather_epi32` over the shared flat table; the scalar
//! kernel remains the always-on default and the arbiter of behaviour.

use crate::bitio::BitReader;
use crate::decode::{DecodeCounters, DecodeError};
use crate::lut::LutDecoder;

/// One independent bitstream to decode: `symbols` codewords starting at
/// `start_bit` of `bytes`.
#[derive(Debug, Clone, Copy)]
pub struct StreamLane<'a> {
    /// Backing buffer (typically the whole encoded image).
    pub bytes: &'a [u8],
    /// First bit of the lane's stream within `bytes`.
    pub start_bit: u64,
    /// Number of codewords to decode.
    pub symbols: usize,
    /// Table schedule: `Some(t)` pins every codeword to table `t` (a
    /// per-field stream); `None` follows the decoder's global cycle
    /// from its start (a whole block).
    pub table: Option<u32>,
}

/// Outcome of one lane: the symbols decoded before the first error (if
/// any) and the cursor's final bit position — exactly where a
/// sequential decode of the same lane would leave it, including the
/// bits consumed by a terminal error prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneResult {
    /// Successfully decoded symbols, in stream order.
    pub syms: Vec<u32>,
    /// First decode failure, if the lane did not complete.
    pub err: Option<DecodeError>,
    /// Bit position after the last consumed bit.
    pub end_bit: u64,
}

/// Per-lane cursor state while a batch is in flight.
struct Lane<'a, 'c> {
    r: BitReader<'a>,
    out: Vec<u32>,
    total: usize,
    /// Table schedule (the global cycle, or a pinned one-entry slice).
    cycle: &'c [u32],
    ci: usize,
    err: Option<DecodeError>,
}

impl Lane<'_, '_> {
    #[inline]
    fn advance(&mut self) {
        self.ci += 1;
        if self.ci == self.cycle.len() {
            self.ci = 0;
        }
    }
}

/// A set of [`LutDecoder`] tables plus a packed shared first level,
/// decoding many independent streams interleaved.
///
/// `cycle` is the default per-symbol table schedule for lanes that are
/// not pinned: symbol `i` uses table `cycle[i % cycle.len()]`. The
/// stream scheme's codec uses one entry per field stream; single-table
/// codecs use `[0]`.
#[derive(Debug, Clone)]
pub struct InterleavedDecoder {
    tables: Vec<LutDecoder>,
    cycle: Vec<u32>,
    /// Packed first levels of all tables, concatenated: entry
    /// `(sym << 8) | len` for a code resolved within the index, else 0
    /// (delegate the symbol to [`LutDecoder::decode_counted`]).
    packed: Vec<u32>,
    /// Start of each table's packed first level within `packed`.
    base: Vec<u32>,
    /// Cached `lut_bits` of each table.
    bits: Vec<u32>,
    /// Whether every packed entry of the table resolves a symbol (a
    /// complete canonical code fitting the first level): the fast path
    /// can never miss mid-stream, so the lockstep kernel drops the
    /// per-symbol escape branch entirely.
    complete: Vec<bool>,
    /// Start of each table's multi-symbol level within `multi`.
    multi_base: Vec<u32>,
    /// Whether the table's multi level resolves enough symbols per
    /// lookup (≥ 1.5 expected over uniform windows) to beat the packed
    /// single-symbol kernels.
    multi_good: Vec<bool>,
    /// Multi-symbol level rows for every table, 2^[`MULTI_BITS`] rows
    /// of [`MULTI_ROW`] u32s each: `[(count << 8) | bits, symbols...]`
    /// for the whole codewords a window holds (`count == 0` marks a
    /// window the packed level must resolve instead).
    multi: Vec<u32>,
}

impl InterleavedDecoder {
    /// Builds a decoder whose default schedule cycles through the
    /// tables in order (table `i` for symbol `i mod n`).
    pub fn new(tables: Vec<LutDecoder>) -> InterleavedDecoder {
        let cycle = (0..tables.len() as u32).collect();
        InterleavedDecoder::with_cycle(tables, cycle)
    }

    /// Builds a single-table decoder (schedule `[0]`).
    pub fn single(table: LutDecoder) -> InterleavedDecoder {
        InterleavedDecoder::with_cycle(vec![table], vec![0])
    }

    /// Builds a decoder with an explicit default table schedule.
    ///
    /// # Panics
    ///
    /// If `tables` or `cycle` is empty, or `cycle` names a table out of
    /// range.
    pub fn with_cycle(tables: Vec<LutDecoder>, cycle: Vec<u32>) -> InterleavedDecoder {
        assert!(!tables.is_empty(), "interleaved decoder needs tables");
        assert!(!cycle.is_empty(), "interleaved decoder needs a schedule");
        assert!(
            cycle.iter().all(|&t| (t as usize) < tables.len()),
            "cycle entry out of range"
        );
        let mut packed = Vec::new();
        let mut base = Vec::with_capacity(tables.len());
        let mut bits = Vec::with_capacity(tables.len());
        let mut complete = Vec::with_capacity(tables.len());
        // Pack each table at the width of its widest first-level code,
        // not at `lut_bits`: a peek's top `w` bits identify every code
        // of length ≤ w, so the narrow level fast-paths exactly the
        // same symbols as the full one while shrinking the hot tables
        // toward cache residency (a 2-bit stream book drops from 8 KiB
        // to a couple of cache lines).
        for tab in &tables {
            let entries = tab.entries();
            let lut_bits = tab.lut_bits();
            let wmax_code = entries
                .iter()
                .map(|e| e.packed() & 0xFF)
                .max()
                .unwrap_or(0)
                .max(1);
            // Bucket the width to min(4, lut_bits), min(8, lut_bits) or
            // lut_bits: narrow books stay cache-resident (a 2-bit
            // stream book needs one cache line, not 8 KiB) while the
            // small width set lets the scalar kernel group lanes of
            // equal width and share one peek shift across a whole quad.
            let tiny = lut_bits.min(4);
            let narrow = lut_bits.min(8);
            let w = if wmax_code <= tiny {
                tiny
            } else if wmax_code <= narrow {
                narrow
            } else {
                lut_bits
            };
            let shift = (lut_bits - w) as usize;
            let start = packed.len();
            base.push(start as u32);
            bits.push(w);
            // The entry at each narrowed index is the unique code whose
            // top bits match the narrow peek (len ≤ w by choice of w).
            packed.extend((0..1usize << w).map(|j| entries[j << shift].packed()));
            complete.push(packed[start..].iter().all(|&e| e & 0xFF != 0));
        }
        // Second pass: a multi-symbol level per table, always at a
        // fixed [`MULTI_BITS`]-bit window. A window of a prefix code is
        // a greedy concatenation of whole codewords plus a partial
        // tail; precomputing the run lets the hot kernel emit up to
        // [`MULTI`] symbols per lookup while consuming exactly the bits
        // sequential decode would. The window peeks the refill
        // accumulator, not the table, so it is deliberately wider than
        // narrow packed levels (a 2-bit-average stream book packs ~4
        // whole codewords into an 8-bit window but ~1.5 into a 4-bit
        // one) and narrower than wide ones — a window whose first code
        // is longer than [`MULTI_BITS`] (or escapes to the second
        // level) gets `count == 0`, which the kernel resolves through
        // the packed level instead. Rows are [`MULTI_ROW`] u32s,
        // `[(count << 8) | bits, sym0..sym3, pad..]`, so one pointer
        // and a shift reach both the metadata and the blind-copyable
        // symbol run.
        let mut multi_base = Vec::with_capacity(tables.len());
        let mut multi_good = Vec::with_capacity(tables.len());
        let mut multi = Vec::new();
        for t in 0..tables.len() {
            let w = bits[t];
            multi_base.push(multi.len() as u32);
            let mut syms_resolved = 0u64;
            let start = base[t] as usize;
            for i in 0..1u64 << MULTI_BITS {
                let mut win = i << (64 - MULTI_BITS);
                let mut used = 0u32;
                let mut row = [0u32; MULTI_ROW];
                let mut cnt = 0u32;
                while (cnt as usize) < MULTI {
                    // A prefix code matching the window's real bits is
                    // unique, so the zero-padded peek resolves it
                    // whenever it fits the bits that remain (the
                    // `used + len` guard); longer matches are refused,
                    // never trusted.
                    let e = packed[start + (win >> (64 - w)) as usize];
                    let len = e & 0xFF;
                    if len == 0 || used + len > MULTI_BITS {
                        break;
                    }
                    row[1 + cnt as usize] = e >> 8;
                    cnt += 1;
                    used += len;
                    win <<= len;
                }
                row[0] = (cnt << 8) | used;
                syms_resolved += cnt.max(1) as u64;
                multi.extend_from_slice(&row);
            }
            // A Huffman bitstream is near-incompressible, so windows
            // are close to uniformly distributed: the mean symbols per
            // lookup over all 2^MULTI_BITS windows (an escape still
            // resolves one) estimates the kernel's amortization. Below
            // ~1.5 the extra row load and escape branches cost more
            // than the packed single-symbol kernels.
            multi_good.push(syms_resolved * 2 >= 3 << MULTI_BITS);
        }
        InterleavedDecoder {
            tables,
            cycle,
            packed,
            base,
            bits,
            complete,
            multi_base,
            multi_good,
            multi,
        }
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Table `t`.
    ///
    /// # Panics
    ///
    /// If `t` is out of range; see [`InterleavedDecoder::get_table`].
    pub fn table(&self, t: usize) -> &LutDecoder {
        &self.tables[t]
    }

    /// Table `t`, or `None` when the schedule names a table this
    /// decoder was built without (e.g. a pair codec with no singles
    /// book).
    pub fn get_table(&self, t: usize) -> Option<&LutDecoder> {
        self.tables.get(t)
    }

    /// The default per-symbol table schedule.
    pub fn cycle(&self) -> &[u32] {
        &self.cycle
    }

    /// Decodes all lanes, round-robin, one burst of up to [`BURST`]
    /// symbols per active lane per round. Returns one [`LaneResult`]
    /// per lane, in input order.
    ///
    /// Each lane behaves exactly like a sequential loop of
    /// [`LutDecoder::decode_counted`] over its schedule, stopping at
    /// its first error; `counts` receives the sum of every lane's
    /// increments. Lanes are independent and the counters are
    /// additive, so the burst width is unobservable in the results.
    ///
    /// # Panics
    ///
    /// If a lane pins a table out of range.
    pub fn decode_streams(
        &self,
        lanes: &[StreamLane<'_>],
        counts: &mut DecodeCounters,
    ) -> Vec<LaneResult> {
        for lane in lanes {
            if let Some(t) = lane.table {
                assert!((t as usize) < self.tables.len(), "lane table out of range");
            }
        }
        // Pinned schedules live here so every lane can borrow a slice.
        let pins: Vec<u32> = lanes.iter().map(|l| l.table.unwrap_or(0)).collect();
        let mut states: Vec<Lane<'_, '_>> = lanes
            .iter()
            .enumerate()
            .map(|(i, l)| Lane {
                r: BitReader::at_bit(l.bytes, l.start_bit),
                out: Vec::with_capacity(l.symbols),
                total: l.symbols,
                cycle: match l.table {
                    Some(_) => std::slice::from_ref(&pins[i]),
                    None => &self.cycle,
                },
                ci: 0,
                err: None,
            })
            .collect();

        let mut active: Vec<u32> = (0..states.len() as u32)
            .filter(|&i| states[i as usize].total > 0)
            .collect();
        // Group pinned lanes by multi-level profitability, then packed
        // width (cycled lanes last), so each scalar quad is uniform:
        // multi-profitable quads take the multi-symbol kernel, equal
        // widths let the rest share one peek shift. Lanes are
        // independent and the counters additive, so the scheduling
        // order is unobservable in the results.
        active.sort_by_key(|&i| {
            let st = &states[i as usize];
            match st.cycle {
                [t] => {
                    let t = *t as usize;
                    (!self.multi_good[t], self.bits[t])
                }
                _ => (true, u32::MAX),
            }
        });
        while !active.is_empty() {
            #[cfg(all(feature = "simd", target_arch = "x86_64"))]
            {
                if simd::usable() && active.len() >= simd::WIDTH {
                    self.round_simd(&mut states, &mut active, counts);
                    continue;
                }
            }
            self.round_scalar(&mut states, &mut active, counts);
        }

        states
            .into_iter()
            .map(|s| LaneResult {
                syms: s.out,
                err: s.err,
                end_bit: s.r.bit_pos(),
            })
            .collect()
    }

    /// One round of the scalar kernel: active lanes run bursts in
    /// software-pipelined groups of [`PIPE`] (single leftover lanes run
    /// alone), then lanes that finish or fail compact out of `active`.
    fn round_scalar(
        &self,
        states: &mut [Lane<'_, '_>],
        active: &mut Vec<u32>,
        counts: &mut DecodeCounters,
    ) {
        let mut idx = 0;
        while idx + PIPE <= active.len() {
            let ids = [
                active[idx] as usize,
                active[idx + 1] as usize,
                active[idx + 2] as usize,
                active[idx + 3] as usize,
            ];
            let pinned = ids.iter().all(|&li| states[li].cycle.len() == 1);
            let lanes = states
                .get_disjoint_mut(ids)
                .expect("active lane ids are distinct");
            let miss = if pinned {
                self.burst_quad_pinned(lanes, counts)
            } else {
                self.burst_quad(lanes, counts)
            };
            for (j, &li) in ids.iter().enumerate() {
                if miss[j] {
                    // The quad stopped this lane on a symbol it cannot
                    // fast-path: take the slow path now so every round
                    // makes progress on the lane that stalled it.
                    self.burst(&mut states[li], counts);
                }
            }
            idx += PIPE;
        }
        for i in idx..active.len() {
            self.burst(&mut states[active[i] as usize], counts);
        }
        active.retain(|&li| {
            let st = &states[li as usize];
            st.err.is_none() && st.out.len() < st.total
        });
    }

    /// The software-pipelined quad kernel: four lanes' cursors live in
    /// locals simultaneously and each loop iteration decodes one symbol
    /// on each. A single lane's peek → packed-load → consume chain is
    /// loop-carried (~the L1 load latency per symbol); four independent
    /// chains in one body let the out-of-order core overlap them, which
    /// is the whole point of interleaving (module docs). Stops when any
    /// lane reaches its burst quota or misses the fast path; `miss[j]`
    /// tells the caller lane `j` still owes a slow-path symbol.
    fn burst_quad(
        &self,
        lanes: [&mut Lane<'_, '_>; PIPE],
        counts: &mut DecodeCounters,
    ) -> [bool; PIPE] {
        let [l0, l1, l2, l3] = lanes;
        let mut syms = 0u64;
        let mut stall = 0u64;
        let mut miss = [false; PIPE];
        // Output goes through raw cursors into pre-reserved capacity: a
        // `Vec::push` in the body would put a (cold) realloc call in the
        // loop, forcing every pipelined cursor to spill across it.
        macro_rules! lane_locals {
            ($l:ident => $c:ident, $ci:ident, $by:ident, $p:ident, $a:ident, $n:ident, $q:ident, $rem:ident, $o:ident) => {
                let $c = $l.cycle;
                let mut $ci = $l.ci;
                let ($by, mut $p, mut $a, mut $n) = $l.r.raw_parts();
                let $q = ($l.total - $l.out.len()).min(BURST);
                $l.out.reserve($q);
                let mut $o = $l.out.as_mut_ptr().wrapping_add($l.out.len());
                let mut $rem = $q;
            };
        }
        lane_locals!(l0 => c0, ci0, by0, p0, a0, n0, q0, rem0, o0);
        lane_locals!(l1 => c1, ci1, by1, p1, a1, n1, q1, rem1, o1);
        lane_locals!(l2 => c2, ci2, by2, p2, a2, n2, q2, rem2, o2);
        lane_locals!(l3 => c3, ci3, by3, p3, a3, n3, q3, rem3, o3);
        'pipe: loop {
            macro_rules! step {
                ($j:tt, $c:ident, $ci:ident, $by:ident, $p:ident, $a:ident, $n:ident, $rem:ident, $o:ident) => {{
                    // SAFETY: ci < cycle.len() (wrap-around below), every
                    // cycle entry indexes a real table (asserted at build
                    // and decode entry), `bits`/`base` are tables-parallel,
                    // and base[t] + peek < packed.len() because the peek is
                    // below 2^bits[t] and packed holds 2^bits[t] entries at
                    // base[t]. Checked indexing here costs ~16 extra
                    // branches per pipelined iteration.
                    let t = unsafe { *$c.get_unchecked($ci) } as usize;
                    let bits = unsafe { *self.bits.get_unchecked(t) };
                    if $n < bits {
                        crate::bitio::refill_parts($by, $p, &mut $a, &mut $n);
                        if $n < bits {
                            miss[$j] = true;
                            break 'pipe;
                        }
                    }
                    let idx = (unsafe { *self.base.get_unchecked(t) } + ($a >> (64 - bits)) as u32)
                        as usize;
                    let e = unsafe { *self.packed.get_unchecked(idx) };
                    let len = e & 0xFF;
                    if len == 0 {
                        miss[$j] = true;
                        break 'pipe;
                    }
                    $a <<= len;
                    $n -= len;
                    $p += len as u64;
                    syms += 1;
                    stall += len as u64;
                    // SAFETY: at most `q` symbols are written (rem counts
                    // down from q and the loop exits at 0), all within the
                    // capacity reserved above.
                    unsafe { *$o = e >> 8 };
                    $o = $o.wrapping_add(1);
                    $ci += 1;
                    if $ci == $c.len() {
                        $ci = 0;
                    }
                    $rem -= 1;
                }};
            }
            step!(0, c0, ci0, by0, p0, a0, n0, rem0, o0);
            step!(1, c1, ci1, by1, p1, a1, n1, rem1, o1);
            step!(2, c2, ci2, by2, p2, a2, n2, rem2, o2);
            step!(3, c3, ci3, by3, p3, a3, n3, rem3, o3);
            if rem0 == 0 || rem1 == 0 || rem2 == 0 || rem3 == 0 {
                break;
            }
        }
        macro_rules! commit {
            ($l:ident, $ci:ident, $p:ident, $a:ident, $n:ident, $q:ident, $rem:ident) => {{
                $l.r.set_raw_parts($p, $a, $n);
                $l.ci = $ci;
                // SAFETY: exactly q - rem symbols were written past the old
                // length, within reserved capacity.
                unsafe { $l.out.set_len($l.out.len() + ($q - $rem)) };
            }};
        }
        commit!(l0, ci0, p0, a0, n0, q0, rem0);
        commit!(l1, ci1, p1, a1, n1, q1, rem1);
        commit!(l2, ci2, p2, a2, n2, q2, rem2);
        commit!(l3, ci3, p3, a3, n3, q3, rem3);
        counts.symbols += syms;
        counts.stall_bits += stall;
        miss
    }

    /// [`Self::burst_quad`] specialized for four table-pinned lanes
    /// (`cycle.len() == 1`), the shape the per-stream throughput tier
    /// uses. The table, its width and its packed first level are
    /// loop-invariant, and symbol/stall counters fall out of the
    /// output-pointer and bit-position deltas after the loop, so each
    /// lane carries just six live values — little enough that the hot
    /// state stays in registers instead of spilling to the stack.
    fn burst_quad_pinned(
        &self,
        lanes: [&mut Lane<'_, '_>; PIPE],
        counts: &mut DecodeCounters,
    ) -> [bool; PIPE] {
        // Monomorphize the stride length on the widest first level in
        // the group: G symbols decode per refill, so G * bits must fit
        // the ≥57 bits a refill guarantees.
        let maxb = lanes
            .iter()
            .map(|l| self.bits[l.cycle[0] as usize])
            .max()
            .expect("PIPE > 0");
        // Quads with enough quota headroom take the multi-symbol
        // kernel: one lookup emits up to [`MULTI`] symbols, so the
        // per-symbol uop cost (the scalar kernels' ceiling) amortizes
        // across a whole run. A kernel step consumes at most
        // `max(MULTI_BITS, maxb)` bits (a packed window or one escaped
        // code), which picks G; the kernel stops within `MULTI * G` of
        // any lane's quota because its blind row stores need that
        // slack. Partial bursts are fine — the rotation re-enters —
        // and the single-symbol tiers below finish short remainders.
        let wm = maxb.max(MULTI_BITS);
        // `G * wm` must stay within a refill's 57-bit guarantee or the
        // kernel can never satisfy its threshold.
        let multi_g = match wm {
            0..=9 => 6,
            10..=11 => 5,
            12..=14 => 4,
            15..=19 => 3,
            20..=28 => 2,
            _ => 1,
        };
        if lanes.iter().all(|l| {
            self.multi_good[l.cycle[0] as usize] && l.total - l.out.len() >= MULTI * multi_g
        }) {
            return match multi_g {
                6 => self.burst_quad_pinned_multi_g::<6>(lanes, counts),
                5 => self.burst_quad_pinned_multi_g::<5>(lanes, counts),
                4 => self.burst_quad_pinned_multi_g::<4>(lanes, counts),
                3 => self.burst_quad_pinned_multi_g::<3>(lanes, counts),
                2 => self.burst_quad_pinned_multi_g::<2>(lanes, counts),
                _ => self.burst_quad_pinned_multi_g::<1>(lanes, counts),
            };
        }
        if maxb <= 4 {
            self.burst_quad_pinned_g::<14>(lanes, counts)
        } else if maxb <= 7 {
            self.burst_quad_pinned_g::<8>(lanes, counts)
        } else if maxb <= 8 {
            self.burst_quad_pinned_g::<7>(lanes, counts)
        } else if maxb <= 9 {
            self.burst_quad_pinned_g::<6>(lanes, counts)
        } else if maxb <= 11 {
            self.burst_quad_pinned_g::<5>(lanes, counts)
        } else if maxb <= 14 {
            self.burst_quad_pinned_g::<4>(lanes, counts)
        } else {
            self.burst_quad_pinned_g::<3>(lanes, counts)
        }
    }

    /// The strided pinned kernel: sets up per-lane cursors, hands the
    /// whole-stride portion of the shared quota to [`stride_quad`] (the
    /// register-resident hot loop), then finishes the sub-stride
    /// remainder in a checked per-symbol tail.
    fn burst_quad_pinned_g<const G: usize>(
        &self,
        lanes: [&mut Lane<'_, '_>; PIPE],
        counts: &mut DecodeCounters,
    ) -> [bool; PIPE] {
        let [l0, l1, l2, l3] = lanes;
        let mut miss = [false; PIPE];
        macro_rules! lane_locals {
            ($l:ident => $ti:ident, $w:ident, $pt:ident, $by:ident, $p:ident, $a:ident, $n:ident, $q:ident, $os:ident) => {
                let $ti = $l.cycle[0] as usize;
                let $w = self.bits[$ti];
                // SAFETY: the packed first level of table `ti` starts at
                // base[ti] and holds 2^w entries (constructor), and every
                // peek below stays under 2^w.
                let $pt = unsafe { self.packed.as_ptr().add(self.base[$ti] as usize) };
                let ($by, $p, $a, $n) = $l.r.raw_parts();
                let $q = ($l.total - $l.out.len()).min(BURST);
                $l.out.reserve($q);
                let $os = $l.out.as_mut_ptr().wrapping_add($l.out.len());
            };
        }
        lane_locals!(l0 => ti0, w0, t0, by0, p0, a0, n0, q0, os0);
        lane_locals!(l1 => ti1, w1, t1, by1, p1, a1, n1, q1, os1);
        lane_locals!(l2 => ti2, w2, t2, by2, p2, a2, n2, q2, os2);
        lane_locals!(l3 => ti3, w3, t3, by3, p3, a3, n3, q3, os3);
        let start = [p0, p1, p2, p3];
        let k = q0.min(q1).min(q2).min(q3);

        let st = StrideLanes {
            acc: [a0, a1, a2, a3],
            nbits: [n0, n1, n2, n3],
            shift: [64 - w0, 64 - w1, 64 - w2, 64 - w3],
            bit_pos: [p0, p1, p2, p3],
            table: [t0, t1, t2, t3],
            out: [os0, os1, os2, os3],
            bytes: [by0.as_ptr(), by1.as_ptr(), by2.as_ptr(), by3.as_ptr()],
            len: [by0.len(), by1.len(), by2.len(), by3.len()],
        };
        let wmax = w0.max(w1).max(w2).max(w3);
        // Width-homogeneous quads (the common case after the sort in
        // `decode_streams`, since packed widths take only two values)
        // run the shared-shift kernel: one peek shift for the whole
        // group trims the pipeline's live values enough to keep all
        // four decode chains register-resident. When the four tables
        // are also complete codes, the lockstep kernel drops the
        // per-symbol escape branch and the per-lane output cursors too.
        let shared = w0 == w1 && w1 == w2 && w2 == w3;
        let lockstep = shared
            && self.complete[ti0]
            && self.complete[ti1]
            && self.complete[ti2]
            && self.complete[ti3];
        let (st, mask) = if lockstep {
            // Rows of a shared scratch area stand in for the four
            // output cursors (one shared counter addresses all four),
            // then whole rows copy contiguously into the lanes' vecs.
            let mut scratch = [const { core::mem::MaybeUninit::<u32>::uninit() }; PIPE * BURST];
            let sp = scratch.as_mut_ptr() as *mut u32;
            #[cfg(target_arch = "x86_64")]
            let (mut st, mask, done) = if std::arch::is_x86_feature_detected!("bmi2") {
                // SAFETY: BMI2 presence just checked.
                unsafe { stride_quad_lockstep_bmi2::<G>(st, w0, k / G, sp) }
            } else {
                stride_quad_lockstep::<G>(st, w0, k / G, sp)
            };
            #[cfg(not(target_arch = "x86_64"))]
            let (mut st, mask, done) = stride_quad_lockstep::<G>(st, w0, k / G, sp);
            let wrote = done * G;
            for j in 0..PIPE {
                // SAFETY: every completed stride wrote G entries per
                // row, so `wrote` entries of row `j` are initialized;
                // the destination has ≥ k ≥ wrote reserved entries.
                unsafe {
                    core::ptr::copy_nonoverlapping(sp.add(j * BURST), st.out[j], wrote);
                    st.out[j] = st.out[j].add(wrote);
                }
            }
            (st, mask)
        } else {
            #[cfg(target_arch = "x86_64")]
            let r = if std::arch::is_x86_feature_detected!("bmi2") {
                // SAFETY: BMI2 presence just checked.
                unsafe {
                    if shared {
                        stride_quad_shared_bmi2::<G>(st, w0, k / G)
                    } else {
                        stride_quad_bmi2::<G>(st, wmax, k / G)
                    }
                }
            } else if shared {
                stride_quad_shared::<G>(st, w0, k / G)
            } else {
                stride_quad::<G>(st, wmax, k / G)
            };
            #[cfg(not(target_arch = "x86_64"))]
            let r = if shared {
                stride_quad_shared::<G>(st, w0, k / G)
            } else {
                stride_quad::<G>(st, wmax, k / G)
            };
            r
        };
        let [mut a0, mut a1, mut a2, mut a3] = st.acc;
        let [mut n0, mut n1, mut n2, mut n3] = st.nbits;
        let [mut p0, mut p1, mut p2, mut p3] = st.bit_pos;
        let [mut o0, mut o1, mut o2, mut o3] = st.out;
        for (j, m) in miss.iter_mut().enumerate() {
            *m = mask & (1 << j) != 0;
        }

        // Checked tail for the sub-stride remainder of the quota (a
        // miss in the hot loop skips it: the caller's scalar path owes
        // the stalled lane its next symbol first).
        let mut left = if mask == 0 { k % G } else { 0 };
        'pipe: while left > 0 {
            macro_rules! step {
                ($j:tt, $w:ident, $pt:ident, $by:ident, $p:ident, $a:ident, $n:ident, $o:ident) => {{
                    if $n < $w {
                        crate::bitio::refill_parts($by, $p, &mut $a, &mut $n);
                        if $n < $w {
                            miss[$j] = true;
                            break 'pipe;
                        }
                    }
                    // SAFETY: as in lane_locals; writes stay within the
                    // reserved capacity.
                    let e = unsafe { *$pt.add(($a >> (64 - $w)) as usize) };
                    let len = e & 0xFF;
                    if len == 0 {
                        miss[$j] = true;
                        break 'pipe;
                    }
                    $a <<= len;
                    $n -= len;
                    $p += len as u64;
                    unsafe { *$o = e >> 8 };
                    $o = $o.wrapping_add(1);
                }};
            }
            step!(0, w0, t0, by0, p0, a0, n0, o0);
            step!(1, w1, t1, by1, p1, a1, n1, o1);
            step!(2, w2, t2, by2, p2, a2, n2, o2);
            step!(3, w3, t3, by3, p3, a3, n3, o3);
            left -= 1;
        }
        macro_rules! commit {
            ($l:ident, $i:tt, $p:ident, $a:ident, $n:ident, $o:ident, $os:ident) => {{
                $l.r.set_raw_parts($p, $a, $n);
                let written = ($o as usize - $os as usize) / core::mem::size_of::<u32>();
                // SAFETY: `written` symbols were stored past the old
                // length, within reserved capacity.
                unsafe { $l.out.set_len($l.out.len() + written) };
                counts.symbols += written as u64;
                counts.stall_bits += $p - start[$i];
            }};
        }
        commit!(l0, 0, p0, a0, n0, o0, os0);
        commit!(l1, 1, p1, a1, n1, o1, os1);
        commit!(l2, 2, p2, a2, n2, o2, os2);
        commit!(l3, 3, p3, a3, n3, o3, os3);
        miss
    }

    /// The multi-symbol pinned kernel: each lookup resolves a whole
    /// window of codewords at once (up to [`MULTI`] symbols per peek)
    /// using the precomputed multi level; windows whose first code
    /// outruns the window resolve one symbol through the packed level
    /// instead (rare for skewed books: frequent symbols carry short
    /// codes). Row stores are blind [`MULTI`]-wide copies and the
    /// output cursor advances by the entry's count. The kernel stops
    /// when any lane comes within one stride's worst-case output
    /// (`MULTI * G`) of its quota and returns the partial burst — the
    /// caller's rotation re-enters, and sub-quota remainders fall to
    /// the single-symbol tiers.
    fn burst_quad_pinned_multi_g<const G: usize>(
        &self,
        lanes: [&mut Lane<'_, '_>; PIPE],
        counts: &mut DecodeCounters,
    ) -> [bool; PIPE] {
        let wm = lanes
            .iter()
            .map(|l| self.bits[l.cycle[0] as usize])
            .max()
            .expect("PIPE > 0")
            .max(MULTI_BITS);
        let [l0, l1, l2, l3] = lanes;
        let mut miss = [false; PIPE];
        macro_rules! lane_locals {
            ($l:ident => $mt:ident, $pt:ident, $sh:ident, $by:ident, $p:ident, $a:ident, $n:ident, $q:ident, $os:ident) => {
                let ti = $l.cycle[0] as usize;
                // SAFETY: table ti's multi level spans `multi_base[ti]
                // .. + MULTI_ROW << MULTI_BITS` (constructor) and its
                // packed level `base[ti] .. + 2^bits[ti]`; every peek
                // below stays in range.
                let $mt = unsafe { self.multi.as_ptr().add(self.multi_base[ti] as usize) };
                let $pt = unsafe { self.packed.as_ptr().add(self.base[ti] as usize) };
                let $sh = 64 - self.bits[ti];
                let ($by, $p, $a, $n) = $l.r.raw_parts();
                // A larger quota than the scalar tiers' BURST: the
                // kernel has no per-symbol escape churn to bound, so
                // longer runs just amortize call setup further. Lanes
                // stay fair because the kernel still exits when the
                // fastest lane nears its quota and the rotation
                // re-enters.
                let $q = ($l.total - $l.out.len()).min(MULTI_BURST);
                $l.out.reserve($q);
                let $os = $l.out.as_mut_ptr().wrapping_add($l.out.len());
            };
        }
        lane_locals!(l0 => mt0, pt0, sh0, by0, p0, a0, n0, q0, os0);
        lane_locals!(l1 => mt1, pt1, sh1, by1, p1, a1, n1, q1, os1);
        lane_locals!(l2 => mt2, pt2, sh2, by2, p2, a2, n2, q2, os2);
        lane_locals!(l3 => mt3, pt3, sh3, by3, p3, a3, n3, q3, os3);
        let start = [p0, p1, p2, p3];

        // A stride blind-writes up to MULTI entries per lookup but
        // advances the cursor only by the real count, so a lane must
        // keep `MULTI * G` reserved slots of headroom past its cursor:
        // strides run while every cursor is at or below its limit.
        // The caller guarantees q >= MULTI * G, so at least one stride
        // runs (or a refill miss reports immediately).
        let st = MultiLanes {
            acc: [a0, a1, a2, a3],
            nbits: [n0, n1, n2, n3],
            bit_pos: [p0, p1, p2, p3],
            multi: [mt0, mt1, mt2, mt3],
            table: [pt0, pt1, pt2, pt3],
            shift: [sh0, sh1, sh2, sh3],
            out: [os0, os1, os2, os3],
            lim: [
                os0.wrapping_add(q0 - MULTI * G),
                os1.wrapping_add(q1 - MULTI * G),
                os2.wrapping_add(q2 - MULTI * G),
                os3.wrapping_add(q3 - MULTI * G),
            ],
            bytes: [by0.as_ptr(), by1.as_ptr(), by2.as_ptr(), by3.as_ptr()],
            len: [by0.len(), by1.len(), by2.len(), by3.len()],
        };
        #[cfg(target_arch = "x86_64")]
        let (st, mask) = if std::arch::is_x86_feature_detected!("bmi2") {
            // SAFETY: BMI2 presence just checked.
            unsafe { stride_quad_multi_bmi2::<G>(st, wm) }
        } else {
            stride_quad_multi::<G>(st, wm)
        };
        #[cfg(not(target_arch = "x86_64"))]
        let (st, mask) = stride_quad_multi::<G>(st, wm);
        let [p0, p1, p2, p3] = st.bit_pos;
        let [a0, a1, a2, a3] = st.acc;
        let [n0, n1, n2, n3] = st.nbits;
        let [o0, o1, o2, o3] = st.out;
        for (j, m) in miss.iter_mut().enumerate() {
            *m = mask & (1 << j) != 0;
        }
        macro_rules! commit {
            ($l:ident, $i:tt, $p:ident, $a:ident, $n:ident, $o:ident, $os:ident) => {{
                $l.r.set_raw_parts($p, $a, $n);
                let written = ($o as usize - $os as usize) / core::mem::size_of::<u32>();
                // SAFETY: `written` symbols were stored past the old
                // length, within reserved capacity (see `lim` above).
                unsafe { $l.out.set_len($l.out.len() + written) };
                counts.symbols += written as u64;
                counts.stall_bits += $p - start[$i];
            }};
        }
        commit!(l0, 0, p0, a0, n0, o0, os0);
        commit!(l1, 1, p1, a1, n1, o1, os1);
        commit!(l2, 2, p2, a2, n2, o2, os2);
        commit!(l3, 3, p3, a3, n3, o3, os3);
        miss
    }

    /// Decodes up to [`BURST`] symbols on one lane before yielding the
    /// cursor back to the rotation: runs of fast-path symbols in the
    /// register-resident hot loop, each miss delegated per-symbol to
    /// the slow path between runs.
    #[inline]
    fn burst(&self, st: &mut Lane<'_, '_>, counts: &mut DecodeCounters) {
        let goal = (st.out.len() + BURST).min(st.total);
        loop {
            if !self.burst_hot(st, counts, goal) {
                return;
            }
            // The hot loop stopped on a symbol it cannot fast-path
            // (short refill, long code, corrupt prefix): delegate that
            // one symbol whole, then resume the hot loop.
            let t = st.cycle[st.ci] as usize;
            self.step_slow(t, st, counts);
            if st.err.is_some() || st.out.len() >= goal {
                return;
            }
        }
    }

    /// The hot loop: the bit cursor is held in locals (via
    /// [`BitReader::raw_parts`]) and the body has no function calls,
    /// so every iteration is peek → packed load → shift/consume →
    /// store, all in registers; counter increments accumulate locally
    /// and fold on exit. Stops at `goal` (returns `false`) or on the
    /// first symbol the packed first level cannot resolve (returns
    /// `true` with the cursor committed just before that symbol, for
    /// the caller to delegate — bit-exactly [`Self::step`]'s order).
    fn burst_hot(&self, st: &mut Lane<'_, '_>, counts: &mut DecodeCounters, goal: usize) -> bool {
        let cycle = st.cycle;
        let mut ci = st.ci;
        let (bytes, mut pos, mut acc, mut nbits) = st.r.raw_parts();
        let mut syms = 0u64;
        let mut stall = 0u64;
        let mut miss = false;
        while st.out.len() < goal {
            let t = cycle[ci] as usize;
            let bits = self.bits[t];
            if nbits < bits {
                crate::bitio::refill_parts(bytes, pos, &mut acc, &mut nbits);
                if nbits < bits {
                    miss = true;
                    break;
                }
            }
            let e = self.packed[(self.base[t] + (acc >> (64 - bits)) as u32) as usize];
            let len = e & 0xFF;
            if len == 0 {
                miss = true;
                break;
            }
            acc <<= len;
            nbits -= len;
            pos += len as u64;
            syms += 1;
            stall += len as u64;
            st.out.push(e >> 8);
            ci += 1;
            if ci == cycle.len() {
                ci = 0;
            }
        }
        st.r.set_raw_parts(pos, acc, nbits);
        st.ci = ci;
        counts.symbols += syms;
        counts.stall_bits += stall;
        miss
    }

    /// Decodes one symbol delegated whole to
    /// [`LutDecoder::decode_counted`] (which replays the refill and
    /// table consultation bit-exactly).
    #[cold]
    fn step_slow(&self, t: usize, st: &mut Lane<'_, '_>, counts: &mut DecodeCounters) {
        match self.tables[t].decode_counted(&mut st.r, counts) {
            Ok(sym) => {
                st.out.push(sym);
                st.advance();
            }
            Err(e) => st.err = Some(e),
        }
    }

    /// One round of the AVX2 kernel: groups of eight active lanes run
    /// lockstep bursts — each step fetches all eight first-level
    /// entries with a single gather over the shared packed table, and
    /// lanes that cannot take the fast path on a step (short refill,
    /// long code, corrupt prefix) fall through to the scalar slow path
    /// for that symbol. Per-lane behaviour is identical to the scalar
    /// kernel.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    fn round_simd(
        &self,
        states: &mut [Lane<'_, '_>],
        active: &mut Vec<u32>,
        counts: &mut DecodeCounters,
    ) {
        let mut kept = 0;
        let mut idx = 0;
        while idx < active.len() {
            if active.len() - idx < simd::WIDTH {
                // Ragged tail of the round: scalar burst.
                let li = active[idx] as usize;
                let st = &mut states[li];
                self.burst(st, counts);
                if st.err.is_none() && st.out.len() < st.total {
                    active[kept] = li as u32;
                    kept += 1;
                }
                idx += 1;
                continue;
            }
            let group: [u32; simd::WIDTH] = active[idx..idx + simd::WIDTH].try_into().unwrap();
            let goals: [usize; simd::WIDTH] = std::array::from_fn(|j| {
                let st = &states[group[j] as usize];
                (st.out.len() + BURST).min(st.total)
            });
            // Lockstep burst: every step gathers the group's entries.
            'burst: loop {
                let mut flat = [0u32; simd::WIDTH];
                let mut eligible = [false; simd::WIDTH];
                for (j, &li) in group.iter().enumerate() {
                    let st = &mut states[li as usize];
                    if st.err.is_some() || st.out.len() >= goals[j] {
                        continue;
                    }
                    let t = st.cycle[st.ci] as usize;
                    let bits = self.bits[t];
                    if st.r.available() < bits {
                        st.r.refill();
                    }
                    if st.r.available() >= bits {
                        flat[j] = self.base[t] + st.r.peek(bits) as u32;
                        eligible[j] = true;
                    }
                }
                let entries = simd::gather(&self.packed, &flat);
                let mut live = false;
                for (j, &li) in group.iter().enumerate() {
                    let st = &mut states[li as usize];
                    if st.err.is_some() || st.out.len() >= goals[j] {
                        continue;
                    }
                    let e = entries[j];
                    let len = e & 0xFF;
                    if eligible[j] && len != 0 {
                        st.r.consume(len);
                        counts.symbols += 1;
                        counts.stall_bits += len as u64;
                        st.out.push(e >> 8);
                        st.advance();
                    } else {
                        let t = st.cycle[st.ci] as usize;
                        self.step_slow(t, st, counts);
                    }
                    live |= st.err.is_none() && st.out.len() < goals[j];
                }
                if !live {
                    break 'burst;
                }
            }
            for &li in &group {
                let st = &states[li as usize];
                if st.err.is_none() && st.out.len() < st.total {
                    active[kept] = li;
                    kept += 1;
                }
            }
            idx += simd::WIDTH;
        }
        active.truncate(kept);
    }
}

/// Symbols decoded per lane per scheduling round: large enough that the
/// rotation's bookkeeping vanishes against the decode work, small
/// enough that many lanes' refills still interleave through the cache.
pub const BURST: usize = 256;

/// Lanes decoded together by the software-pipelined scalar kernel. Four
/// independent peek→load→consume chains cover the per-symbol L1 load
/// latency without spilling the pipelined cursors out of registers.
pub const PIPE: usize = 4;

/// Max symbols one multi-symbol table entry resolves. Four u32 symbols
/// are one 16-byte row — a single unaligned vector store — and stream
/// books average ~2 bits per code, so an 8-bit window rarely holds
/// more whole codewords than this.
pub const MULTI: usize = 4;

/// Window width of every multi-symbol level. Fixed rather than
/// per-table: 8 bits keeps the level at 2^8 rows (8 KiB — hot rows of
/// a skewed book stay L1-resident), packs ~4 two-bit codes per lookup,
/// and makes the peek shift shared across any quad. Codes longer than
/// this fall back to the packed level via `count == 0` entries.
const MULTI_BITS: u32 = 9;

/// u32s per multi-symbol row: metadata word plus [`MULTI`] symbols,
/// padded to a power of two so row addressing is a shift, and so
/// metadata and symbols share a cache line.
const MULTI_ROW: usize = 8;

/// Per-call quota of the multi-symbol kernel. Larger than [`BURST`]:
/// the branch-free kernel gains nothing from yielding often, so longer
/// runs amortize the per-call cursor setup across more symbols.
const MULTI_BURST: usize = 4 * BURST;

/// Cursor state of one pinned quad group, passed to [`stride_quad`] by
/// value so the optimizer scatters the arrays into locals instead of
/// keeping them behind a reference.
#[derive(Clone, Copy)]
struct StrideLanes {
    acc: [u64; PIPE],
    nbits: [u32; PIPE],
    /// Peek shift per lane: `64 - w` for the lane's packed width.
    shift: [u32; PIPE],
    bit_pos: [u64; PIPE],
    table: [*const u32; PIPE],
    out: [*mut u32; PIPE],
    bytes: [*const u8; PIPE],
    len: [usize; PIPE],
}

/// The hot loop of the pinned kernel, never inlined: its register
/// allocation must see only the ~12 live values of the pipeline (four
/// lanes' `acc`/`nbits`/output cursor plus the shared shift), not the
/// caller's bookkeeping — inlined into the kernel's prologue/epilogue
/// the accumulators spill to the stack and the four decode chains
/// serialize on the reloads.
///
/// Each outer iteration tops every lane up once (a refill buffers ≥57
/// bits, covering `G` codes of up to `w` bits), then decodes `G`
/// symbols per lane with the escape on a second-level/invalid entry as
/// the only per-symbol branch. Bit positions are recovered from the
/// buffered-bit deltas at stride boundaries. Returns the updated
/// cursors and a bitmask of lanes that missed the fast path (the caller
/// owes them a checked/slow-path symbol).
#[inline(never)]
fn stride_quad<const G: usize>(st: StrideLanes, wmax: u32, strides: usize) -> (StrideLanes, u8) {
    stride_quad_impl::<G>(st, wmax, strides)
}

/// [`stride_quad`] compiled with BMI2: `shlx`/`shrx` carry no
/// FLAGS-merge dependency, so the four lanes' variable shifts stop
/// serializing through the flags register (plain `shl %cl` must
/// preserve flags when `cl == 0`, chaining every shift in the loop).
/// Same Rust body, so bit-identical results; callers runtime-detect.
#[cfg(target_arch = "x86_64")]
#[inline(never)]
#[target_feature(enable = "bmi2")]
unsafe fn stride_quad_bmi2<const G: usize>(
    st: StrideLanes,
    wmax: u32,
    strides: usize,
) -> (StrideLanes, u8) {
    stride_quad_impl::<G>(st, wmax, strides)
}

#[inline(always)]
fn stride_quad_impl<const G: usize>(
    mut st: StrideLanes,
    wmax: u32,
    strides: usize,
) -> (StrideLanes, u8) {
    // One threshold for all lanes: a refill covering G codes of the
    // group's widest table covers every lane's.
    let thresh = G as u32 * wmax;
    let mut mask = 0u8;
    let [mut a0, mut a1, mut a2, mut a3] = st.acc;
    let [mut n0, mut n1, mut n2, mut n3] = st.nbits;
    let [s0, s1, s2, s3] = st.shift;
    let [t0, t1, t2, t3] = st.table;
    let [mut o0, mut o1, mut o2, mut o3] = st.out;
    'strides: for _ in 0..strides {
        macro_rules! ensure {
            ($j:tt, $a:ident, $n:ident) => {{
                if $n < thresh {
                    // SAFETY: pointer and length of a byte slice the
                    // caller holds borrowed for the whole call.
                    let by = unsafe { core::slice::from_raw_parts(st.bytes[$j], st.len[$j]) };
                    crate::bitio::refill_parts(by, st.bit_pos[$j], &mut $a, &mut $n);
                    if $n < thresh {
                        mask |= 1 << $j;
                    }
                }
            }};
        }
        ensure!(0, a0, n0);
        ensure!(1, a1, n1);
        ensure!(2, a2, n2);
        ensure!(3, a3, n3);
        if mask != 0 {
            break 'strides;
        }
        let m = [n0, n1, n2, n3];
        'steps: for _ in 0..G {
            macro_rules! step {
                ($j:tt, $a:ident, $n:ident, $s:ident, $t:ident, $o:ident) => {{
                    // SAFETY: peek < 2^w, within the table's packed
                    // first level; at most `strides * G` symbols are
                    // written, within the capacity the caller reserved.
                    let e = unsafe { *$t.add(($a >> $s) as usize) };
                    let len = e & 0xFF;
                    if len == 0 {
                        mask |= 1 << $j;
                        break 'steps;
                    }
                    $a <<= len;
                    $n -= len;
                    unsafe { *$o = e >> 8 };
                    $o = $o.wrapping_add(1);
                }};
            }
            step!(0, a0, n0, s0, t0, o0);
            step!(1, a1, n1, s1, t1, o1);
            step!(2, a2, n2, s2, t2, o2);
            step!(3, a3, n3, s3, t3, o3);
        }
        // Buffered bits only shrink between refills, so the delta is
        // exactly the bits each lane consumed this stride.
        st.bit_pos[0] += (m[0] - n0) as u64;
        st.bit_pos[1] += (m[1] - n1) as u64;
        st.bit_pos[2] += (m[2] - n2) as u64;
        st.bit_pos[3] += (m[3] - n3) as u64;
        if mask != 0 {
            break 'strides;
        }
    }
    st.acc = [a0, a1, a2, a3];
    st.nbits = [n0, n1, n2, n3];
    st.out = [o0, o1, o2, o3];
    (st, mask)
}

/// [`stride_quad`] for a width-homogeneous quad: one peek shift serves
/// all four lanes, dropping the pipeline from ~20 live values (which
/// forces per-symbol stack reloads of the spilled shifts and cursors)
/// to few enough that the accumulators and table pointers stay in
/// registers. Identical per-lane behaviour — the shift is the same
/// value the per-lane kernel would load.
#[inline(never)]
fn stride_quad_shared<const G: usize>(
    st: StrideLanes,
    w: u32,
    strides: usize,
) -> (StrideLanes, u8) {
    stride_quad_shared_impl::<G>(st, w, strides)
}

/// [`stride_quad_shared`] compiled with BMI2; see [`stride_quad_bmi2`].
#[cfg(target_arch = "x86_64")]
#[inline(never)]
#[target_feature(enable = "bmi2")]
unsafe fn stride_quad_shared_bmi2<const G: usize>(
    st: StrideLanes,
    w: u32,
    strides: usize,
) -> (StrideLanes, u8) {
    stride_quad_shared_impl::<G>(st, w, strides)
}

#[inline(always)]
fn stride_quad_shared_impl<const G: usize>(
    mut st: StrideLanes,
    w: u32,
    strides: usize,
) -> (StrideLanes, u8) {
    let thresh = G as u32 * w;
    let s = 64 - w;
    let mut mask = 0u8;
    let [mut a0, mut a1, mut a2, mut a3] = st.acc;
    let [mut n0, mut n1, mut n2, mut n3] = st.nbits;
    let [t0, t1, t2, t3] = st.table;
    let [mut o0, mut o1, mut o2, mut o3] = st.out;
    'strides: for _ in 0..strides {
        macro_rules! ensure {
            ($j:tt, $a:ident, $n:ident) => {{
                if $n < thresh {
                    // SAFETY: pointer and length of a byte slice the
                    // caller holds borrowed for the whole call.
                    let by = unsafe { core::slice::from_raw_parts(st.bytes[$j], st.len[$j]) };
                    crate::bitio::refill_parts(by, st.bit_pos[$j], &mut $a, &mut $n);
                    if $n < thresh {
                        mask |= 1 << $j;
                    }
                }
            }};
        }
        ensure!(0, a0, n0);
        ensure!(1, a1, n1);
        ensure!(2, a2, n2);
        ensure!(3, a3, n3);
        if mask != 0 {
            break 'strides;
        }
        let m = [n0, n1, n2, n3];
        'steps: for _ in 0..G {
            macro_rules! step {
                ($j:tt, $a:ident, $n:ident, $t:ident, $o:ident) => {{
                    // SAFETY: peek < 2^w, within the table's packed
                    // first level; at most `strides * G` symbols are
                    // written, within the capacity the caller reserved.
                    let e = unsafe { *$t.add(($a >> s) as usize) };
                    let len = e & 0xFF;
                    if len == 0 {
                        mask |= 1 << $j;
                        break 'steps;
                    }
                    $a <<= len;
                    $n -= len;
                    unsafe { *$o = e >> 8 };
                    $o = $o.wrapping_add(1);
                }};
            }
            step!(0, a0, n0, t0, o0);
            step!(1, a1, n1, t1, o1);
            step!(2, a2, n2, t2, o2);
            step!(3, a3, n3, t3, o3);
        }
        // Buffered bits only shrink between refills, so the delta is
        // exactly the bits each lane consumed this stride.
        st.bit_pos[0] += (m[0] - n0) as u64;
        st.bit_pos[1] += (m[1] - n1) as u64;
        st.bit_pos[2] += (m[2] - n2) as u64;
        st.bit_pos[3] += (m[3] - n3) as u64;
        if mask != 0 {
            break 'strides;
        }
    }
    st.acc = [a0, a1, a2, a3];
    st.nbits = [n0, n1, n2, n3];
    st.out = [o0, o1, o2, o3];
    (st, mask)
}

/// [`stride_quad_shared`] for quads whose four tables are *complete*
/// codes fitting their packed first level: no packed entry has length
/// zero, so the per-symbol escape branch of the other kernels is
/// provably dead — a sequential decode of the same lane could not take
/// it either — and every lane advances exactly `G` symbols per stride
/// in lockstep. That lets one shared counter address all four outputs
/// as rows of `scratch` (row `j` starts at `j * BURST`), shrinking the
/// loop to table-load → shift/consume → store per symbol with no
/// branch and few enough live values that nothing spills. Only the
/// refill guard can stop the loop early; it stops whole strides, so
/// every row holds exactly `done * G` symbols for the caller to copy
/// out. Returns the updated cursors, the refill-miss mask, and the
/// number of completed strides.
#[inline(never)]
fn stride_quad_lockstep<const G: usize>(
    st: StrideLanes,
    w: u32,
    strides: usize,
    scratch: *mut u32,
) -> (StrideLanes, u8, usize) {
    stride_quad_lockstep_impl::<G>(st, w, strides, scratch)
}

/// [`stride_quad_lockstep`] compiled with BMI2; see [`stride_quad_bmi2`].
#[cfg(target_arch = "x86_64")]
#[inline(never)]
#[target_feature(enable = "bmi2")]
unsafe fn stride_quad_lockstep_bmi2<const G: usize>(
    st: StrideLanes,
    w: u32,
    strides: usize,
    scratch: *mut u32,
) -> (StrideLanes, u8, usize) {
    stride_quad_lockstep_impl::<G>(st, w, strides, scratch)
}

#[inline(always)]
fn stride_quad_lockstep_impl<const G: usize>(
    mut st: StrideLanes,
    w: u32,
    strides: usize,
    scratch: *mut u32,
) -> (StrideLanes, u8, usize) {
    let thresh = G as u32 * w;
    let s = 64 - w;
    let mut mask = 0u8;
    let mut done = 0usize;
    let mut c = 0usize;
    let [mut a0, mut a1, mut a2, mut a3] = st.acc;
    let [mut n0, mut n1, mut n2, mut n3] = st.nbits;
    let [t0, t1, t2, t3] = st.table;
    'strides: for _ in 0..strides {
        macro_rules! ensure {
            ($j:tt, $a:ident, $n:ident) => {{
                if $n < thresh {
                    // SAFETY: pointer and length of a byte slice the
                    // caller holds borrowed for the whole call.
                    let by = unsafe { core::slice::from_raw_parts(st.bytes[$j], st.len[$j]) };
                    crate::bitio::refill_parts(by, st.bit_pos[$j], &mut $a, &mut $n);
                    if $n < thresh {
                        mask |= 1 << $j;
                    }
                }
            }};
        }
        ensure!(0, a0, n0);
        ensure!(1, a1, n1);
        ensure!(2, a2, n2);
        ensure!(3, a3, n3);
        if mask != 0 {
            break 'strides;
        }
        let m = [n0, n1, n2, n3];
        for _ in 0..G {
            macro_rules! step {
                ($j:tt, $a:ident, $n:ident, $t:ident) => {{
                    // SAFETY: peek < 2^w, within the table's packed
                    // first level; c stays below BURST (≤ strides * G ≤
                    // the caller's quota), within row `j` of scratch.
                    let e = unsafe { *$t.add(($a >> s) as usize) };
                    let len = e & 0xFF;
                    // A complete table has 1 ≤ len ≤ w for every entry
                    // (constructor), so the step cannot miss and the
                    // G·w ≤ `thresh` bits checked above cover the whole
                    // stride.
                    $a <<= len;
                    $n -= len;
                    unsafe { *scratch.add($j * BURST + c) = e >> 8 };
                }};
            }
            step!(0, a0, n0, t0);
            step!(1, a1, n1, t1);
            step!(2, a2, n2, t2);
            step!(3, a3, n3, t3);
            c += 1;
        }
        // Buffered bits only shrink between refills, so the delta is
        // exactly the bits each lane consumed this stride.
        st.bit_pos[0] += (m[0] - n0) as u64;
        st.bit_pos[1] += (m[1] - n1) as u64;
        st.bit_pos[2] += (m[2] - n2) as u64;
        st.bit_pos[3] += (m[3] - n3) as u64;
        done += 1;
    }
    st.acc = [a0, a1, a2, a3];
    st.nbits = [n0, n1, n2, n3];
    (st, mask, done)
}

/// Cursor state of a pinned quad running the multi-symbol kernel.
#[derive(Clone, Copy)]
struct MultiLanes {
    acc: [u64; PIPE],
    nbits: [u32; PIPE],
    bit_pos: [u64; PIPE],
    /// Multi-symbol level per lane: [`MULTI_ROW`]-u32 rows.
    multi: [*const u32; PIPE],
    /// Packed single-symbol level per lane, for escaped windows.
    table: [*const u32; PIPE],
    /// Packed-level peek shift per lane: `64 - bits`.
    shift: [u32; PIPE],
    out: [*mut u32; PIPE],
    /// Highest cursor value at which a stride may still start: one
    /// stride past it blind-writes at most to the end of the lane's
    /// reserved quota.
    lim: [*mut u32; PIPE],
    bytes: [*const u8; PIPE],
    len: [usize; PIPE],
}

/// The multi-symbol hot loop (see [`stride_quad`] for the `inline`
/// split rationale): one [`MULTI_BITS`]-bit peek per *window*, not per
/// symbol. The row carries the count and total length of every whole
/// codeword in the window, so the common step is load row, blind-copy
/// its [`MULTI`]-wide symbol run, shift/consume, bump the cursor by the
/// count — no per-symbol work at all. A `count == 0` row (first code
/// longer than the window) resolves one symbol through the packed
/// level, where an unresolved (second-level/invalid) entry is the only
/// miss exit. Strides stop on the quota limit or a refill shortfall;
/// bit positions fall out of buffered-bit deltas as in the other
/// kernels.
#[inline(never)]
fn stride_quad_multi<const G: usize>(st: MultiLanes, w: u32) -> (MultiLanes, u8) {
    stride_quad_multi_impl::<G>(st, w)
}

/// [`stride_quad_multi`] compiled with BMI2; see [`stride_quad_bmi2`].
#[cfg(target_arch = "x86_64")]
#[inline(never)]
#[target_feature(enable = "bmi2")]
unsafe fn stride_quad_multi_bmi2<const G: usize>(st: MultiLanes, w: u32) -> (MultiLanes, u8) {
    stride_quad_multi_impl::<G>(st, w)
}

#[inline(always)]
fn stride_quad_multi_impl<const G: usize>(mut st: MultiLanes, w: u32) -> (MultiLanes, u8) {
    // A step consumes at most `w = max(MULTI_BITS, packed width)` bits
    // (a whole window, or one escaped code), so a refill covering G
    // codes of `w` bits covers a stride.
    let thresh = G as u32 * w;
    const SM: u32 = 64 - MULTI_BITS;
    let mut mask = 0u8;
    let [mut a0, mut a1, mut a2, mut a3] = st.acc;
    let [mut n0, mut n1, mut n2, mut n3] = st.nbits;
    let [t0, t1, t2, t3] = st.multi;
    let [mut o0, mut o1, mut o2, mut o3] = st.out;
    let [l0, l1, l2, l3] = st.lim;
    'strides: loop {
        // Quota guard: a stride advances each cursor by at most
        // MULTI * G, so past `lim` the next stride could overrun the
        // reserved output.
        if o0 > l0 || o1 > l1 || o2 > l2 || o3 > l3 {
            break 'strides;
        }
        macro_rules! ensure {
            ($j:tt, $a:ident, $n:ident) => {{
                if $n < thresh {
                    // SAFETY: pointer and length of a byte slice the
                    // caller holds borrowed for the whole call.
                    let by = unsafe { core::slice::from_raw_parts(st.bytes[$j], st.len[$j]) };
                    crate::bitio::refill_parts(by, st.bit_pos[$j], &mut $a, &mut $n);
                    if $n < thresh {
                        mask |= 1 << $j;
                    }
                }
            }};
        }
        ensure!(0, a0, n0);
        ensure!(1, a1, n1);
        ensure!(2, a2, n2);
        ensure!(3, a3, n3);
        if mask != 0 {
            break 'strides;
        }
        let m = [n0, n1, n2, n3];
        'steps: for _ in 0..G {
            macro_rules! step {
                ($j:tt, $a:ident, $n:ident, $t:ident, $o:ident) => {{
                    // SAFETY: the window peek indexes one of the 2^8
                    // MULTI_ROW-wide rows of the lane's multi level;
                    // the blind MULTI-wide copy stays within the
                    // reserved quota because the cursor was at or under
                    // `lim` when the stride began and each of the G
                    // steps advances it by at most MULTI.
                    let r = unsafe { $t.add(($a >> SM) as usize * MULTI_ROW) };
                    let e = unsafe { *r };
                    let cnt = (e >> 8) as usize;
                    if cnt != 0 {
                        unsafe { core::ptr::copy_nonoverlapping(r.add(1), $o, MULTI) };
                        $a <<= e & 0xFF;
                        $n -= e & 0xFF;
                        $o = $o.wrapping_add(cnt);
                    } else {
                        // Escaped window: one symbol through the packed
                        // level (in-bounds as in `stride_quad`).
                        let e2 = unsafe { *st.table[$j].add(($a >> st.shift[$j]) as usize) };
                        let len = e2 & 0xFF;
                        if len == 0 {
                            mask |= 1 << $j;
                            break 'steps;
                        }
                        $a <<= len;
                        $n -= len;
                        unsafe { *$o = e2 >> 8 };
                        $o = $o.wrapping_add(1);
                    }
                }};
            }
            step!(0, a0, n0, t0, o0);
            step!(1, a1, n1, t1, o1);
            step!(2, a2, n2, t2, o2);
            step!(3, a3, n3, t3, o3);
        }
        // Buffered bits only shrink between refills, so the delta is
        // exactly the bits each lane consumed this stride.
        st.bit_pos[0] += (m[0] - n0) as u64;
        st.bit_pos[1] += (m[1] - n1) as u64;
        st.bit_pos[2] += (m[2] - n2) as u64;
        st.bit_pos[3] += (m[3] - n3) as u64;
        if mask != 0 {
            break 'strides;
        }
    }
    st.acc = [a0, a1, a2, a3];
    st.nbits = [n0, n1, n2, n3];
    st.out = [o0, o1, o2, o3];
    (st, mask)
}

/// AVX2 gather over the shared packed first level. Runtime-detected;
/// the scalar fallback keeps `--features simd` building (and correct)
/// on machines without AVX2.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    /// Lanes per gather.
    pub const WIDTH: usize = 8;

    /// Whether the vector path is usable on this machine.
    #[inline]
    pub fn usable() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// Fetches `table[idx[j]]` for all eight lanes.
    #[inline]
    pub fn gather(table: &[u32], idx: &[u32; WIDTH]) -> [u32; WIDTH] {
        debug_assert!(idx.iter().all(|&i| (i as usize) < table.len()));
        if usable() {
            // SAFETY: AVX2 confirmed at runtime; every index is in
            // bounds (packed-table offsets computed from table peeks).
            unsafe { gather_avx2(table, idx) }
        } else {
            std::array::from_fn(|j| table[idx[j] as usize])
        }
    }

    #[target_feature(enable = "avx2")]
    unsafe fn gather_avx2(table: &[u32], idx: &[u32; WIDTH]) -> [u32; WIDTH] {
        use std::arch::x86_64::*;
        let offsets = _mm256_loadu_si256(idx.as_ptr() as *const __m256i);
        let got = _mm256_i32gather_epi32::<4>(table.as_ptr() as *const i32, offsets);
        let mut out = [0u32; WIDTH];
        _mm256_storeu_si256(out.as_mut_ptr() as *mut __m256i, got);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;
    use crate::code::CodeBook;

    /// Sequential model: per-symbol `decode_counted` over the lane's
    /// schedule, stopping at the first error.
    fn decode_lane_sequential(
        dec: &InterleavedDecoder,
        lane: &StreamLane<'_>,
        counts: &mut DecodeCounters,
    ) -> LaneResult {
        let mut r = BitReader::at_bit(lane.bytes, lane.start_bit);
        let mut syms = Vec::new();
        let mut err = None;
        for i in 0..lane.symbols {
            let t = match lane.table {
                Some(t) => t as usize,
                None => dec.cycle()[i % dec.cycle().len()] as usize,
            };
            match dec.table(t).decode_counted(&mut r, counts) {
                Ok(s) => syms.push(s),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        LaneResult {
            syms,
            err,
            end_bit: r.bit_pos(),
        }
    }

    fn assert_matches_sequential(dec: &InterleavedDecoder, lanes: &[StreamLane<'_>]) {
        let mut ic = DecodeCounters::default();
        let got = dec.decode_streams(lanes, &mut ic);
        let mut sc = DecodeCounters::default();
        let want: Vec<LaneResult> = lanes
            .iter()
            .map(|l| decode_lane_sequential(dec, l, &mut sc))
            .collect();
        assert_eq!(got, want);
        assert_eq!(ic, sc, "counter totals diverge");
    }

    fn book(freqs: &[u64]) -> CodeBook {
        CodeBook::from_freqs(freqs).unwrap()
    }

    fn encode(book: &CodeBook, syms: &[u32]) -> Vec<u8> {
        let mut w = BitWriter::new();
        for &s in syms {
            book.encode_into(s, &mut w);
        }
        w.into_bytes()
    }

    #[test]
    fn pinned_lanes_match_sequential() {
        let b0 = book(&[40, 20, 10, 5, 2, 1]);
        let b1 = book(&[1, 1, 3, 9, 27]);
        let dec = InterleavedDecoder::new(vec![b0.lut_decoder(), b1.lut_decoder()]);
        let m0: Vec<u32> = (0..6).cycle().take(101).collect();
        let m1: Vec<u32> = (0..5).rev().cycle().take(57).collect();
        let s0 = encode(&b0, &m0);
        let s1 = encode(&b1, &m1);
        let lanes = [
            StreamLane {
                bytes: &s0,
                start_bit: 0,
                symbols: m0.len(),
                table: Some(0),
            },
            StreamLane {
                bytes: &s1,
                start_bit: 0,
                symbols: m1.len(),
                table: Some(1),
            },
        ];
        let mut c = DecodeCounters::default();
        let res = dec.decode_streams(&lanes, &mut c);
        assert_eq!(res[0].syms, m0);
        assert_eq!(res[1].syms, m1);
        assert!(res.iter().all(|r| r.err.is_none()));
        assert_eq!(c.symbols, (m0.len() + m1.len()) as u64);
        assert_matches_sequential(&dec, &lanes);
    }

    #[test]
    fn cycled_lane_decodes_alternating_tables() {
        let b0 = book(&[9, 3, 1]);
        let b1 = book(&[1, 2, 4, 8]);
        let dec = InterleavedDecoder::new(vec![b0.lut_decoder(), b1.lut_decoder()]);
        let mut w = BitWriter::new();
        let mut want = Vec::new();
        for i in 0..40u32 {
            let (b, m) = if i % 2 == 0 { (&b0, 3) } else { (&b1, 4) };
            b.encode_into(i % m, &mut w);
            want.push(i % m);
        }
        let bytes = w.into_bytes();
        let lanes = [StreamLane {
            bytes: &bytes,
            start_bit: 0,
            symbols: 40,
            table: None,
        }];
        let mut c = DecodeCounters::default();
        let res = dec.decode_streams(&lanes, &mut c);
        assert_eq!(res[0].syms, want);
        assert_eq!(res[0].err, None);
        assert_matches_sequential(&dec, &lanes);
    }

    #[test]
    fn long_codes_and_garbage_match_sequential() {
        // Exponential freqs force codes past the first level.
        let freqs: Vec<u64> = (0..30).map(|i| 1u64 << i).collect();
        let b = book(&freqs);
        assert!(b.max_len() > crate::lut::DEFAULT_LUT_BITS as u8);
        let dec = InterleavedDecoder::single(b.lut_decoder());
        let msg: Vec<u32> = (0..30).chain((0..30).rev()).collect();
        let good = encode(&b, &msg);
        // Deterministic garbage.
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        let junk: Vec<u8> = (0..64)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        for start in 0..8 {
            let lanes = [
                StreamLane {
                    bytes: &good,
                    start_bit: 0,
                    symbols: msg.len(),
                    table: Some(0),
                },
                // Over-ask: runs off the end of the good stream.
                StreamLane {
                    bytes: &good,
                    start_bit: start,
                    symbols: msg.len() + 4,
                    table: Some(0),
                },
                StreamLane {
                    bytes: &junk,
                    start_bit: start,
                    symbols: 1000,
                    table: Some(0),
                },
            ];
            assert_matches_sequential(&dec, &lanes);
        }
    }

    #[test]
    fn truncated_and_empty_lanes() {
        let b = book(&[1, 1, 1, 1]);
        let dec = InterleavedDecoder::single(b.lut_decoder());
        let bytes = encode(&b, &[0, 1, 2, 3]);
        let lanes = [
            StreamLane {
                bytes: &[],
                start_bit: 0,
                symbols: 3,
                table: Some(0),
            },
            StreamLane {
                bytes: &bytes,
                start_bit: 0,
                symbols: 0,
                table: Some(0),
            },
            StreamLane {
                bytes: &bytes,
                start_bit: 7,
                symbols: 9,
                table: Some(0),
            },
        ];
        let mut c = DecodeCounters::default();
        let res = dec.decode_streams(&lanes, &mut c);
        assert_eq!(res[0].err, Some(DecodeError::UnexpectedEos { at_bit: 0 }));
        assert_eq!(
            res[1],
            LaneResult {
                syms: vec![],
                err: None,
                end_bit: 0
            }
        );
        assert_matches_sequential(&dec, &lanes);
    }

    #[test]
    fn many_lanes_shared_buffer_interleave() {
        // 32 lanes carved from one buffer at staggered bit offsets,
        // mimicking batch decode of blocks in a shared image.
        let b = book(&[13, 7, 5, 3, 2, 1, 1, 1]);
        let dec = InterleavedDecoder::single(b.lut_decoder());
        let mut w = BitWriter::new();
        let mut starts = Vec::new();
        let mut msgs: Vec<Vec<u32>> = Vec::new();
        for lane in 0..32u32 {
            starts.push(w.bit_len());
            let msg: Vec<u32> = (0..(lane % 17 + 1)).map(|i| (i * 5 + lane) % 8).collect();
            for &s in &msg {
                b.encode_into(s, &mut w);
            }
            msgs.push(msg);
        }
        let bytes = w.into_bytes();
        let lanes: Vec<StreamLane<'_>> = starts
            .iter()
            .zip(&msgs)
            .map(|(&start_bit, m)| StreamLane {
                bytes: &bytes,
                start_bit,
                symbols: m.len(),
                table: Some(0),
            })
            .collect();
        let mut c = DecodeCounters::default();
        let res = dec.decode_streams(&lanes, &mut c);
        for (r, m) in res.iter().zip(&msgs) {
            assert_eq!(&r.syms, m);
            assert_eq!(r.err, None);
        }
        assert_matches_sequential(&dec, &lanes);
    }

    #[test]
    fn counters_fold_across_lanes() {
        let b = book(&[8, 4, 2, 1]);
        let dec = InterleavedDecoder::single(b.lut_decoder());
        let m: Vec<u32> = (0..4).cycle().take(25).collect();
        let bytes = encode(&b, &m);
        let lane = StreamLane {
            bytes: &bytes,
            start_bit: 0,
            symbols: m.len(),
            table: Some(0),
        };
        let mut c = DecodeCounters::default();
        dec.decode_streams(&[lane, lane, lane], &mut c);
        let mut one = DecodeCounters::default();
        dec.decode_streams(&[lane], &mut one);
        assert_eq!(c.symbols, 3 * one.symbols);
        assert_eq!(c.stall_bits, 3 * one.stall_bits);
        assert_eq!(c.long_fallbacks, 3 * one.long_fallbacks);
    }
}
