//! Canonical Huffman code construction.
//!
//! Code *lengths* come from the classic two-queue Huffman algorithm (or
//! from the package–merge algorithm in [`crate::bounded`] when a length
//! bound is requested); code *bits* are then assigned canonically —
//! shorter codes first, ties broken by symbol index — which is what makes
//! the table-driven decoder of [`crate::decode`] possible.

use crate::bitio::BitWriter;
use crate::bounded::package_merge;
use std::collections::BinaryHeap;
use std::fmt;

/// Errors from code construction or encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HuffmanError {
    /// No symbol has a nonzero frequency.
    EmptyAlphabet,
    /// A length bound of `max_len` cannot host `symbols` distinct symbols
    /// (needs `2^max_len >= symbols`).
    BoundTooTight { max_len: u8, symbols: usize },
    /// Attempted to encode a symbol that had zero frequency (no code).
    UncodedSymbol { symbol: u32 },
}

impl fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HuffmanError::EmptyAlphabet => write!(f, "no symbol has a nonzero frequency"),
            HuffmanError::BoundTooTight { max_len, symbols } => {
                write!(f, "length bound {max_len} too tight for {symbols} symbols")
            }
            HuffmanError::UncodedSymbol { symbol } => {
                write!(f, "symbol {symbol} has no code (zero frequency)")
            }
        }
    }
}

impl std::error::Error for HuffmanError {}

/// A canonical Huffman code book over a dense alphabet `0..freqs.len()`.
///
/// Symbols with zero frequency receive no code (length 0) and cannot be
/// encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeBook {
    lengths: Vec<u8>,
    codes: Vec<u64>,
    max_len: u8,
    coded_symbols: usize,
}

impl CodeBook {
    /// Builds an optimal (unbounded) Huffman code from symbol frequencies.
    ///
    /// # Errors
    ///
    /// [`HuffmanError::EmptyAlphabet`] when every frequency is zero.
    pub fn from_freqs(freqs: &[u64]) -> Result<CodeBook, HuffmanError> {
        let lengths = huffman_lengths(freqs)?;
        Ok(Self::from_lengths(lengths))
    }

    /// Builds an optimal *length-limited* Huffman code (max code length
    /// `max_len`) using the package–merge algorithm. This is the paper's
    /// "Bounded Huffman" escape for symbol distributions whose optimal
    /// codes would be too long for the fetch hardware.
    ///
    /// # Errors
    ///
    /// [`HuffmanError::EmptyAlphabet`] when every frequency is zero, and
    /// [`HuffmanError::BoundTooTight`] when `2^max_len` is smaller than the
    /// number of nonzero-frequency symbols.
    pub fn bounded_from_freqs(freqs: &[u64], max_len: u8) -> Result<CodeBook, HuffmanError> {
        let lengths = package_merge(freqs, max_len)?;
        Ok(Self::from_lengths(lengths))
    }

    /// Builds the canonical code from externally computed lengths
    /// (length 0 = uncoded symbol). Public so fault-injection tests can
    /// construct deliberately incomplete books; normal construction goes
    /// through [`CodeBook::from_freqs`] / [`CodeBook::bounded_from_freqs`].
    pub fn from_lengths(lengths: Vec<u8>) -> CodeBook {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        // Canonical assignment: sort coded symbols by (length, symbol).
        let mut order: Vec<u32> = (0..lengths.len() as u32)
            .filter(|&s| lengths[s as usize] > 0)
            .collect();
        order.sort_by_key(|&s| (lengths[s as usize], s));
        let mut codes = vec![0u64; lengths.len()];
        let mut code = 0u64;
        let mut prev_len = 0u8;
        for &s in &order {
            let len = lengths[s as usize];
            code <<= len - prev_len;
            codes[s as usize] = code;
            code += 1;
            prev_len = len;
        }
        let coded_symbols = order.len();
        CodeBook {
            lengths,
            codes,
            max_len,
            coded_symbols,
        }
    }

    /// The code length of `symbol` in bits (0 = no code).
    pub fn len_of(&self, symbol: u32) -> u8 {
        self.lengths[symbol as usize]
    }

    /// The canonical code bits of `symbol` (valid only when
    /// `len_of(symbol) > 0`).
    pub fn code_of(&self, symbol: u32) -> u64 {
        self.codes[symbol as usize]
    }

    /// Longest code length in the book.
    pub fn max_len(&self) -> u8 {
        self.max_len
    }

    /// Number of symbols that have codes (the Huffman *dictionary size*,
    /// `k` in the paper's complexity model).
    pub fn num_coded(&self) -> usize {
        self.coded_symbols
    }

    /// Alphabet size (including uncoded symbols).
    pub fn alphabet_size(&self) -> usize {
        self.lengths.len()
    }

    /// Code lengths for all symbols.
    pub fn lengths(&self) -> &[u8] {
        &self.lengths
    }

    /// Writes the code for `symbol` into `w`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` has no code.
    pub fn encode_into(&self, symbol: u32, w: &mut BitWriter) {
        let len = self.lengths[symbol as usize];
        assert!(len > 0, "symbol {symbol} has no code");
        w.write_bits(self.codes[symbol as usize], len as u32);
    }

    /// Fallible variant of [`CodeBook::encode_into`].
    ///
    /// # Errors
    ///
    /// [`HuffmanError::UncodedSymbol`] when the symbol has no code.
    pub fn try_encode_into(&self, symbol: u32, w: &mut BitWriter) -> Result<(), HuffmanError> {
        let len = *self
            .lengths
            .get(symbol as usize)
            .ok_or(HuffmanError::UncodedSymbol { symbol })?;
        if len == 0 {
            return Err(HuffmanError::UncodedSymbol { symbol });
        }
        w.write_bits(self.codes[symbol as usize], len as u32);
        Ok(())
    }

    /// Total encoded size in bits of a corpus with the given frequencies.
    pub fn total_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f * self.lengths[s] as u64)
            .sum()
    }

    /// Average code length in bits per symbol over the given frequencies.
    pub fn average_len(&self, freqs: &[u64]) -> f64 {
        let total: u64 = freqs.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.total_bits(freqs) as f64 / total as f64
    }

    /// Builds the canonical table decoder for this book — the
    /// bit-serial reference implementation (the paper's Figure-9
    /// hardware model).
    pub fn decoder(&self) -> crate::decode::CanonicalDecoder {
        crate::decode::CanonicalDecoder::new(self)
    }

    /// Builds the two-level lookup-table decoder for this book — the
    /// fast kernel, observationally identical to [`CodeBook::decoder`].
    pub fn lut_decoder(&self) -> crate::lut::LutDecoder {
        crate::lut::LutDecoder::new(self)
    }

    /// Verifies the Kraft inequality `Σ 2^-len ≤ 1` (sanity check; always
    /// true for books built by this crate).
    pub fn kraft_sum(&self) -> f64 {
        self.lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| (0.5f64).powi(l as i32))
            .sum()
    }
}

/// Computes optimal Huffman code lengths via a binary heap.
///
/// Single-symbol alphabets get length 1 (a real stored bit, matching what
/// hardware would do).
fn huffman_lengths(freqs: &[u64]) -> Result<Vec<u8>, HuffmanError> {
    #[derive(PartialEq, Eq)]
    struct Node {
        freq: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for min-heap; tie-break on id for determinism.
            other.freq.cmp(&self.freq).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let coded: Vec<usize> = (0..freqs.len()).filter(|&s| freqs[s] > 0).collect();
    if coded.is_empty() {
        return Err(HuffmanError::EmptyAlphabet);
    }
    let mut lengths = vec![0u8; freqs.len()];
    if coded.len() == 1 {
        lengths[coded[0]] = 1;
        return Ok(lengths);
    }

    // Internal tree: nodes 0..coded.len() are leaves, the rest internal.
    let mut heap = BinaryHeap::new();
    let mut parent: Vec<usize> = vec![usize::MAX; coded.len()];
    for (leaf, &_sym) in coded.iter().enumerate() {
        heap.push(Node {
            freq: freqs[coded[leaf]],
            id: leaf,
        });
    }
    let mut next_id = coded.len();
    let mut parents_of_internal: Vec<usize> = Vec::new();
    while heap.len() > 1 {
        let a = heap.pop().unwrap();
        let b = heap.pop().unwrap();
        let id = next_id;
        next_id += 1;
        parents_of_internal.push(usize::MAX);
        for child in [a.id, b.id] {
            if child < coded.len() {
                parent[child] = id;
            } else {
                parents_of_internal[child - coded.len()] = id;
            }
        }
        heap.push(Node {
            freq: a.freq.saturating_add(b.freq),
            id,
        });
    }
    // Depth of each leaf = chain length to root.
    for (leaf, &sym) in coded.iter().enumerate() {
        let mut depth = 0u32;
        let mut node = parent[leaf];
        while node != usize::MAX {
            depth += 1;
            node = parents_of_internal[node - coded.len()];
        }
        lengths[sym] = depth.min(255) as u8;
    }
    Ok(lengths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy_bits;

    #[test]
    fn classic_example_lengths() {
        // Frequencies 45,13,12,16,9,5 — the CLRS example; optimal lengths
        // are 1,3,3,3,4,4.
        let freqs = [45u64, 13, 12, 16, 9, 5];
        let book = CodeBook::from_freqs(&freqs).unwrap();
        let mut lens: Vec<u8> = book.lengths().to_vec();
        lens.sort_unstable();
        assert_eq!(lens, vec![1, 3, 3, 3, 4, 4]);
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let book = CodeBook::from_freqs(&[0, 7, 0]).unwrap();
        assert_eq!(book.len_of(1), 1);
        assert_eq!(book.num_coded(), 1);
        assert_eq!(book.total_bits(&[0, 7, 0]), 7);
    }

    #[test]
    fn empty_alphabet_rejected() {
        assert_eq!(
            CodeBook::from_freqs(&[0, 0]).unwrap_err(),
            HuffmanError::EmptyAlphabet
        );
        assert_eq!(
            CodeBook::from_freqs(&[]).unwrap_err(),
            HuffmanError::EmptyAlphabet
        );
    }

    #[test]
    fn codes_are_prefix_free() {
        let freqs: Vec<u64> = (1..=40).map(|i| i * i).collect();
        let book = CodeBook::from_freqs(&freqs).unwrap();
        for a in 0..freqs.len() as u32 {
            for b in 0..freqs.len() as u32 {
                if a == b {
                    continue;
                }
                let (la, lb) = (book.len_of(a), book.len_of(b));
                if la <= lb {
                    let prefix = book.code_of(b) >> (lb - la);
                    assert_ne!(prefix, book.code_of(a), "code {a} is a prefix of {b}");
                }
            }
        }
    }

    #[test]
    fn average_length_within_one_bit_of_entropy() {
        let freqs: Vec<u64> = vec![1000, 500, 200, 100, 50, 20, 10, 5, 2, 1];
        let book = CodeBook::from_freqs(&freqs).unwrap();
        let h = entropy_bits(&freqs);
        let avg = book.average_len(&freqs);
        assert!(avg >= h - 1e-9, "avg {avg} below entropy {h}");
        assert!(avg < h + 1.0, "avg {avg} not within 1 bit of entropy {h}");
    }

    #[test]
    fn kraft_equality_for_full_trees() {
        let freqs = [5u64, 4, 3, 2, 1];
        let book = CodeBook::from_freqs(&freqs).unwrap();
        assert!((book.kraft_sum() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn canonical_codes_are_sorted_numerically_by_length() {
        let freqs = [40u64, 30, 20, 10, 5, 1];
        let book = CodeBook::from_freqs(&freqs).unwrap();
        // Within the same length, codes must increase with symbol index.
        for len in 1..=book.max_len() {
            let syms: Vec<u32> = (0..freqs.len() as u32)
                .filter(|&s| book.len_of(s) == len)
                .collect();
            for pair in syms.windows(2) {
                assert!(book.code_of(pair[0]) < book.code_of(pair[1]));
            }
        }
    }

    #[test]
    fn bounded_respects_limit_and_stays_near_optimal() {
        // Exponential frequencies force long optimal codes.
        let freqs: Vec<u64> = (0..20).map(|i| 1u64 << i).collect();
        let opt = CodeBook::from_freqs(&freqs).unwrap();
        assert!(opt.max_len() > 8);
        let bounded = CodeBook::bounded_from_freqs(&freqs, 8).unwrap();
        assert!(bounded.max_len() <= 8);
        assert!(bounded.kraft_sum() <= 1.0 + 1e-12);
        assert!(bounded.total_bits(&freqs) >= opt.total_bits(&freqs));
    }

    #[test]
    fn bound_too_tight_rejected() {
        let freqs = [1u64; 10];
        let err = CodeBook::bounded_from_freqs(&freqs, 3).unwrap_err();
        assert_eq!(
            err,
            HuffmanError::BoundTooTight {
                max_len: 3,
                symbols: 10
            }
        );
    }

    #[test]
    fn try_encode_rejects_uncoded() {
        let book = CodeBook::from_freqs(&[1, 0]).unwrap();
        let mut w = BitWriter::new();
        assert!(book.try_encode_into(1, &mut w).is_err());
        assert!(book.try_encode_into(7, &mut w).is_err());
        assert!(book.try_encode_into(0, &mut w).is_ok());
    }

    #[test]
    fn total_bits_matches_sum() {
        let freqs = [3u64, 2, 1];
        let book = CodeBook::from_freqs(&freqs).unwrap();
        let expect: u64 = freqs
            .iter()
            .enumerate()
            .map(|(s, &f)| f * book.len_of(s as u32) as u64)
            .sum();
        assert_eq!(book.total_bits(&freqs), expect);
    }
}
