//! Dense symbol dictionaries over arbitrary hashable alphabets.
//!
//! The *Full* compression scheme Huffman-codes whole 40-bit operations; a
//! [`Dictionary`] maps each distinct value to a dense symbol id so the
//! generic [`crate::CodeBook`] machinery applies. The dictionary also
//! tracks frequencies (the static histogram the compiler builds).

use std::collections::HashMap;
use std::hash::Hash;

/// A dense, frequency-counting dictionary over values of type `T`.
#[derive(Debug, Clone, Default)]
pub struct Dictionary<T> {
    ids: HashMap<T, u32>,
    values: Vec<T>,
    freqs: Vec<u64>,
}

impl<T: Eq + Hash + Clone> Dictionary<T> {
    /// Creates an empty dictionary.
    pub fn new() -> Dictionary<T> {
        Dictionary {
            ids: HashMap::new(),
            values: Vec::new(),
            freqs: Vec::new(),
        }
    }

    /// Records one occurrence of `value`, returning its dense id.
    pub fn record(&mut self, value: T) -> u32 {
        match self.ids.get(&value) {
            Some(&id) => {
                self.freqs[id as usize] += 1;
                id
            }
            None => {
                let id = self.values.len() as u32;
                self.ids.insert(value.clone(), id);
                self.values.push(value);
                self.freqs.push(1);
                id
            }
        }
    }

    /// Builds a dictionary from an iterator of occurrences.
    pub fn from_iter_counted<I: IntoIterator<Item = T>>(iter: I) -> Dictionary<T> {
        let mut d = Dictionary::new();
        for v in iter {
            d.record(v);
        }
        d
    }

    /// The dense id of `value`, if it has been recorded.
    pub fn id_of(&self, value: &T) -> Option<u32> {
        self.ids.get(value).copied()
    }

    /// The value with dense id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn value_of(&self, id: u32) -> &T {
        &self.values[id as usize]
    }

    /// Occurrence counts indexed by dense id.
    pub fn freqs(&self) -> &[u64] {
        &self.freqs
    }

    /// Number of distinct values recorded.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total occurrences recorded.
    pub fn total(&self) -> u64 {
        self.freqs.iter().sum()
    }

    /// Iterates over `(value, frequency)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (&T, u64)> {
        self.values.iter().zip(self.freqs.iter().copied())
    }
}

impl<T: Eq + Hash + Clone> FromIterator<T> for Dictionary<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Dictionary<T> {
        Dictionary::from_iter_counted(iter)
    }
}

impl<T: Eq + Hash + Clone> Extend<T> for Dictionary<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut d = Dictionary::new();
        assert_eq!(d.record("a"), 0);
        assert_eq!(d.record("b"), 1);
        assert_eq!(d.record("a"), 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.freqs(), &[2, 1]);
        assert_eq!(d.total(), 3);
        assert_eq!(d.id_of(&"a"), Some(0));
        assert_eq!(d.id_of(&"z"), None);
        assert_eq!(*d.value_of(1), "b");
    }

    #[test]
    fn from_iterator() {
        let d: Dictionary<u64> = [5u64, 5, 7, 5, 9].into_iter().collect();
        assert_eq!(d.len(), 3);
        assert_eq!(d.freqs()[d.id_of(&5).unwrap() as usize], 3);
    }

    #[test]
    fn extend_accumulates() {
        let mut d: Dictionary<u8> = Dictionary::new();
        d.extend([1u8, 2, 3]);
        d.extend([3u8, 3]);
        assert_eq!(d.total(), 5);
        assert_eq!(d.freqs()[d.id_of(&3).unwrap() as usize], 3);
    }

    #[test]
    fn empty_dictionary() {
        let d: Dictionary<u32> = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.total(), 0);
    }

    #[test]
    fn iter_pairs_in_id_order() {
        let d: Dictionary<char> = "abacab".chars().collect();
        let pairs: Vec<_> = d.iter().collect();
        assert_eq!(pairs, vec![(&'a', 3), (&'b', 2), (&'c', 1)]);
    }
}
