//! MSB-first bit-level readers and writers.
//!
//! Compressed code is a bit stream; blocks are byte-aligned by the layout
//! engine (paper §3.3: "we address this by aligning the first op of a block
//! to byte boundaries"), so the writer exposes [`BitWriter::align_byte`]
//! and reports bit positions.

/// Accumulates bits most-significant-first into a byte vector.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final partial byte (0..8).
    used: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends the low `len` bits of `code`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn write_bits(&mut self, code: u64, len: u32) {
        assert!(len <= 64, "cannot write {len} bits at once");
        for i in (0..len).rev() {
            self.write_bit((code >> i) & 1 == 1);
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Pads with zero bits to the next byte boundary and returns how many
    /// padding bits were added.
    pub fn align_byte(&mut self) -> u32 {
        let pad = (8 - self.used) % 8;
        for _ in 0..pad {
            self.write_bit(false);
        }
        pad
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        if self.used == 0 {
            self.bytes.len() as u64 * 8
        } else {
            (self.bytes.len() as u64 - 1) * 8 + self.used as u64
        }
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Finishes the stream (zero-padding the final byte) and returns the
    /// bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_byte();
        self.bytes
    }

    /// Borrowed view of the full bytes written so far (final byte may be
    /// partially filled, padded with zeros).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Reads bits most-significant-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`, positioned at bit 0.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Creates a reader positioned at an absolute bit offset.
    pub fn at_bit(bytes: &'a [u8], bit: u64) -> BitReader<'a> {
        BitReader { bytes, pos: bit }
    }

    /// Current absolute bit position.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Remaining readable bits.
    pub fn remaining(&self) -> u64 {
        (self.bytes.len() as u64 * 8).saturating_sub(self.pos)
    }

    /// Reads one bit; `None` at end of stream.
    pub fn read_bit(&mut self) -> Option<bool> {
        let byte = (self.pos / 8) as usize;
        if byte >= self.bytes.len() {
            return None;
        }
        let bit = 7 - (self.pos % 8) as u32;
        self.pos += 1;
        Some((self.bytes[byte] >> bit) & 1 == 1)
    }

    /// Reads `len` bits MSB-first; `None` if fewer remain.
    pub fn read_bits(&mut self, len: u32) -> Option<u64> {
        assert!(len <= 64);
        if self.remaining() < len as u64 {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..len {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }

    /// Skips forward to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_bit_patterns() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFF, 8);
        w.write_bits(0, 5);
        w.write_bits(0b110011, 6);
        let total = w.bit_len();
        assert_eq!(total, 22);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bits(5), Some(0));
        assert_eq!(r.read_bits(6), Some(0b110011));
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn align_byte_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        assert_eq!(w.align_byte(), 6);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(0b1, 1);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1100_0000, 0b1000_0000]);
    }

    #[test]
    fn align_on_boundary_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        assert_eq!(w.align_byte(), 0);
        assert_eq!(w.bit_len(), 8);
    }

    #[test]
    fn reader_at_bit_offset() {
        let bytes = [0b0000_0001, 0b1000_0000];
        let mut r = BitReader::at_bit(&bytes, 7);
        assert_eq!(r.read_bits(2), Some(0b11));
        assert_eq!(r.bit_pos(), 9);
    }

    #[test]
    fn reader_stops_at_end() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn write_64_bit_value() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0xFF; 8]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn reader_align_byte() {
        let bytes = [0b1010_1010, 0b0101_0101];
        let mut r = BitReader::new(&bytes);
        r.read_bits(3);
        r.align_byte();
        assert_eq!(r.bit_pos(), 8);
        assert_eq!(r.read_bits(8), Some(0b0101_0101));
    }
}
