//! MSB-first bit-level readers and writers.
//!
//! Compressed code is a bit stream; blocks are byte-aligned by the layout
//! engine (paper §3.3: "we address this by aligning the first op of a block
//! to byte boundaries"), so the writer exposes [`BitWriter::align_byte`]
//! and reports bit positions.

/// Accumulates bits most-significant-first into a byte vector.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final partial byte (0..8).
    used: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends the low `len` bits of `code`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `len > 64`.
    pub fn write_bits(&mut self, code: u64, len: u32) {
        assert!(len <= 64, "cannot write {len} bits at once");
        for i in (0..len).rev() {
            self.write_bit((code >> i) & 1 == 1);
        }
    }

    /// Appends a single bit.
    pub fn write_bit(&mut self, bit: bool) {
        if self.used == 0 {
            self.bytes.push(0);
        }
        if bit {
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= 1 << (7 - self.used);
        }
        self.used = (self.used + 1) % 8;
    }

    /// Pads with zero bits to the next byte boundary and returns how many
    /// padding bits were added.
    pub fn align_byte(&mut self) -> u32 {
        let pad = (8 - self.used) % 8;
        for _ in 0..pad {
            self.write_bit(false);
        }
        pad
    }

    /// Total number of bits written so far.
    pub fn bit_len(&self) -> u64 {
        if self.used == 0 {
            self.bytes.len() as u64 * 8
        } else {
            (self.bytes.len() as u64 - 1) * 8 + self.used as u64
        }
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Finishes the stream (zero-padding the final byte) and returns the
    /// bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        self.align_byte();
        self.bytes
    }

    /// Borrowed view of the full bytes written so far (final byte may be
    /// partially filled, padded with zeros).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

/// Reads bits most-significant-first from a byte slice.
///
/// The reader keeps a 64-bit *lookahead accumulator*: the top
/// [`BitReader::available`] bits of `acc` are the next stream bits at
/// `pos`, left-aligned, with all lower bits zero. [`BitReader::refill`]
/// tops the accumulator up a byte at a time, so [`BitReader::read_bits`]
/// and table-driven decoders ([`crate::lut::LutDecoder`]) extract whole
/// fields per shift instead of looping bit-by-bit. The observable
/// MSB-first semantics are identical to a per-bit cursor.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor (bits consumed so far).
    pos: u64,
    /// Lookahead: top `acc_bits` bits are the stream bits at
    /// `pos..pos + acc_bits`; all lower bits are zero.
    acc: u64,
    /// Valid bits in `acc` (0..=64), never exceeding what remains.
    acc_bits: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`, positioned at bit 0.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader::at_bit(bytes, 0)
    }

    /// Creates a reader positioned at an absolute bit offset.
    pub fn at_bit(bytes: &'a [u8], bit: u64) -> BitReader<'a> {
        BitReader {
            bytes,
            pos: bit,
            acc: 0,
            acc_bits: 0,
        }
    }

    /// Current absolute bit position.
    #[inline]
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Remaining readable bits.
    #[inline]
    pub fn remaining(&self) -> u64 {
        (self.bytes.len() as u64 * 8).saturating_sub(self.pos)
    }

    /// Tops the lookahead accumulator up to at least 57 valid bits, or
    /// to end of stream, whichever comes first. Away from the buffer
    /// tail this is a single unaligned 8-byte load; the final <8 bytes
    /// fall back to byte-at-a-time.
    #[inline]
    pub fn refill(&mut self) {
        refill_parts(self.bytes, self.pos, &mut self.acc, &mut self.acc_bits);
    }

    /// Decomposes the reader into `(bytes, pos, acc, acc_bits)` so a
    /// hot kernel can hold the cursor in locals (the returned slice
    /// carries the reader's own `'a`, not a borrow of `self`). Pair
    /// with [`BitReader::set_raw_parts`] to commit the advanced cursor
    /// back; the kernel must preserve the accumulator invariants
    /// (top `acc_bits` bits of `acc` are the stream bits at `pos`,
    /// lower bits zero).
    #[inline]
    pub(crate) fn raw_parts(&self) -> (&'a [u8], u64, u64, u32) {
        (self.bytes, self.pos, self.acc, self.acc_bits)
    }

    /// Commits a cursor advanced outside the reader; see
    /// [`BitReader::raw_parts`].
    #[inline]
    pub(crate) fn set_raw_parts(&mut self, pos: u64, acc: u64, acc_bits: u32) {
        self.pos = pos;
        self.acc = acc;
        self.acc_bits = acc_bits;
    }

    /// Number of valid lookahead bits currently buffered. After
    /// [`BitReader::refill`] this is `min(57.., remaining())` — if it is
    /// below 57, the stream has no further bits.
    #[inline]
    pub fn available(&self) -> u32 {
        self.acc_bits
    }

    /// The next `n` buffered bits, right-aligned, without consuming
    /// them. Meaningful only for `n <= available()`; bits past the end
    /// of the buffer read as zero.
    #[inline]
    pub fn peek(&self, n: u32) -> u64 {
        debug_assert!(n <= 64);
        if n == 0 {
            0
        } else {
            self.acc >> (64 - n)
        }
    }

    /// Consumes `n` buffered bits (`n` must be `<= available()`).
    #[inline]
    pub fn consume(&mut self, n: u32) {
        debug_assert!(n <= self.acc_bits);
        self.pos += n as u64;
        self.acc = if n == 64 { 0 } else { self.acc << n };
        self.acc_bits -= n;
    }

    /// Reads one bit; `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.acc_bits == 0 {
            self.refill();
            if self.acc_bits == 0 {
                return None;
            }
        }
        let bit = self.acc >> 63 == 1;
        self.consume(1);
        Some(bit)
    }

    /// Reads `len` bits MSB-first; `None` if fewer remain. Extracts up
    /// to 57 bits per accumulator refill rather than looping per bit.
    #[inline]
    pub fn read_bits(&mut self, len: u32) -> Option<u64> {
        assert!(len <= 64);
        if self.remaining() < len as u64 {
            return None;
        }
        let mut v = 0u64;
        let mut need = len;
        while need > 0 {
            if self.acc_bits == 0 {
                self.refill();
            }
            let take = need.min(self.acc_bits);
            if take == 64 {
                v = self.acc;
            } else {
                v = (v << take) | (self.acc >> (64 - take));
            }
            self.consume(take);
            need -= take;
        }
        Some(v)
    }

    /// Skips forward to the next byte boundary.
    #[inline]
    pub fn align_byte(&mut self) {
        let aligned = self.pos.div_ceil(8) * 8;
        let skip = (aligned - self.pos) as u32;
        if skip <= self.acc_bits {
            self.consume(skip);
        } else {
            self.pos = aligned;
            self.acc = 0;
            self.acc_bits = 0;
        }
    }
}

/// The refill body on raw cursor parts, shared between
/// [`BitReader::refill`] and the register-resident kernels of
/// [`crate::interleave`] — one implementation, so the lookahead the
/// hot loops see is bit-exactly the reader's own.
#[inline(always)]
pub(crate) fn refill_parts(bytes: &[u8], pos: u64, acc: &mut u64, acc_bits: &mut u32) {
    if *acc_bits > 56 {
        return;
    }
    let mut next = pos + *acc_bits as u64;
    let idx = (next / 8) as usize;
    let shift = (next % 8) as u32;
    if let Some(chunk) = bytes.get(idx..idx + 8) {
        // Whole-word load: the u64 shift drops the `shift` bits of
        // the leading byte already accounted for, leaving the next
        // `64 - shift` stream bits left-aligned.
        let w = u64::from_be_bytes(chunk.try_into().expect("8-byte slice")) << shift;
        *acc |= w >> *acc_bits;
        *acc_bits = (*acc_bits + 64 - shift).min(64);
        return;
    }
    while *acc_bits <= 56 {
        let idx = (next / 8) as usize;
        if idx >= bytes.len() {
            break;
        }
        // `shift` is nonzero only for the partial leading byte; the
        // u8 shift left-aligns its unread bits and zeroes the rest.
        let shift = (next % 8) as u32;
        let v = (bytes[idx] << shift) as u64;
        *acc |= v << (56 - *acc_bits);
        *acc_bits += 8 - shift;
        next += (8 - shift) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_bit_patterns() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xFF, 8);
        w.write_bits(0, 5);
        w.write_bits(0b110011, 6);
        let total = w.bit_len();
        assert_eq!(total, 22);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bits(5), Some(0));
        assert_eq!(r.read_bits(6), Some(0b110011));
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1000_0000]);
    }

    #[test]
    fn align_byte_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        assert_eq!(w.align_byte(), 6);
        assert_eq!(w.bit_len(), 8);
        w.write_bits(0b1, 1);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1100_0000, 0b1000_0000]);
    }

    #[test]
    fn align_on_boundary_is_noop() {
        let mut w = BitWriter::new();
        w.write_bits(0xAB, 8);
        assert_eq!(w.align_byte(), 0);
        assert_eq!(w.bit_len(), 8);
    }

    #[test]
    fn reader_at_bit_offset() {
        let bytes = [0b0000_0001, 0b1000_0000];
        let mut r = BitReader::at_bit(&bytes, 7);
        assert_eq!(r.read_bits(2), Some(0b11));
        assert_eq!(r.bit_pos(), 9);
    }

    #[test]
    fn reader_stops_at_end() {
        let bytes = [0xFFu8];
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0xFF));
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn write_64_bit_value() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0xFF; 8]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn reader_align_byte() {
        let bytes = [0b1010_1010, 0b0101_0101];
        let mut r = BitReader::new(&bytes);
        r.read_bits(3);
        r.align_byte();
        assert_eq!(r.bit_pos(), 8);
        assert_eq!(r.read_bits(8), Some(0b0101_0101));
    }

    #[test]
    fn align_without_lookahead_still_moves() {
        // align_byte before any refill (empty accumulator) must advance
        // the cursor exactly like the per-bit reader did.
        let bytes = [0xAB, 0xCD];
        let mut r = BitReader::at_bit(&bytes, 3);
        r.align_byte();
        assert_eq!(r.bit_pos(), 8);
        assert_eq!(r.read_bits(8), Some(0xCD));
    }

    #[test]
    fn peek_consume_refill_primitives() {
        let bytes = [0b1100_1010, 0b0111_0001, 0xFF];
        let mut r = BitReader::new(&bytes);
        r.refill();
        assert_eq!(r.available(), 24);
        assert_eq!(r.peek(4), 0b1100);
        assert_eq!(r.peek(12), 0b1100_1010_0111);
        r.consume(5);
        assert_eq!(r.bit_pos(), 5);
        assert_eq!(r.peek(3), 0b010);
        // Peeking past the end of the stream reads zeros.
        r.consume(19);
        r.refill();
        assert_eq!(r.available(), 0);
        assert_eq!(r.peek(8), 0);
    }

    #[test]
    fn refill_from_unaligned_entry() {
        let bytes = [0b0000_0111, 0b1010_0000];
        let mut r = BitReader::at_bit(&bytes, 5);
        r.refill();
        assert_eq!(r.available(), 11);
        assert_eq!(r.peek(6), 0b111101);
        assert_eq!(r.read_bits(6), Some(0b111101));
        assert_eq!(r.bit_pos(), 11);
    }

    #[test]
    fn interleaved_bit_and_field_reads() {
        let mut w = BitWriter::new();
        w.write_bit(true);
        w.write_bits(0x3FFF_FFFF_FFFF_FFFF, 62);
        w.write_bit(false);
        w.write_bits(0b1011, 4);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), Some(true));
        assert_eq!(r.read_bits(62), Some(0x3FFF_FFFF_FFFF_FFFF));
        assert_eq!(r.read_bit(), Some(false));
        assert_eq!(r.read_bits(4), Some(0b1011));
    }

    #[test]
    fn read_bits_full_word_from_odd_offset() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0xDEAD_BEEF_CAFE_F00D, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(64), Some(0xDEAD_BEEF_CAFE_F00D));
    }

    #[test]
    fn word_refill_matches_per_bit_view_from_every_offset() {
        // Long enough that refill takes the 8-byte word path away from
        // the tail and the byte path near it.
        let bytes: Vec<u8> = (0..21u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        let total = bytes.len() as u64 * 8;
        for start in 0..16u64 {
            let mut r = BitReader::at_bit(&bytes, start);
            let mut got = Vec::new();
            while let Some(bit) = r.read_bit() {
                got.push(bit);
            }
            let expected: Vec<bool> = (start..total)
                .map(|i| (bytes[(i / 8) as usize] >> (7 - (i % 8))) & 1 == 1)
                .collect();
            assert_eq!(got, expected, "start {start}");
        }
        // Mixed field widths across the word/byte refill boundary.
        for start in 0..8u64 {
            let mut a = BitReader::at_bit(&bytes, start);
            let mut b = BitReader::at_bit(&bytes, start);
            for width in [13u32, 7, 64, 1, 29, 40, 3] {
                let slow: Option<u64> = (0..width)
                    .map(|_| b.read_bit().map(u64::from))
                    .try_fold(0u64, |acc, bit| bit.map(|x| (acc << 1) | x));
                assert_eq!(a.read_bits(width), slow, "start {start} width {width}");
            }
        }
    }

    #[test]
    fn at_bit_past_end_reads_nothing() {
        let bytes = [0xFFu8];
        let mut r = BitReader::at_bit(&bytes, 12);
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
        assert_eq!(r.read_bits(0), Some(0));
    }
}
