//! Canonical table-driven Huffman decoding.
//!
//! Models the software view of the PLA decoder: per-length `first_code` /
//! `first_index` tables over the canonical code space. Decoding consumes
//! one bit at a time, exactly like the paper's Huffman-tree hardware
//! (Figure 9) walks one level per multiplexer row.

use crate::bitio::BitReader;
use crate::code::CodeBook;

/// A canonical Huffman decoder built from a [`CodeBook`].
#[derive(Debug, Clone)]
pub struct CanonicalDecoder {
    /// `first_code[l]` = canonical code value of the first code of length l.
    first_code: Vec<u64>,
    /// `first_index[l]` = index into `symbols` of that first code.
    first_index: Vec<usize>,
    /// Number of codes of each length.
    count: Vec<usize>,
    /// Symbols in canonical order.
    symbols: Vec<u32>,
    max_len: u8,
}

impl CanonicalDecoder {
    /// Builds the decoder tables.
    pub fn new(book: &CodeBook) -> CanonicalDecoder {
        let max_len = book.max_len();
        let mut symbols: Vec<u32> = (0..book.alphabet_size() as u32)
            .filter(|&s| book.len_of(s) > 0)
            .collect();
        symbols.sort_by_key(|&s| (book.len_of(s), s));
        let mut first_code = vec![0u64; max_len as usize + 1];
        let mut first_index = vec![0usize; max_len as usize + 1];
        let mut count = vec![0usize; max_len as usize + 1];
        for &s in &symbols {
            count[book.len_of(s) as usize] += 1;
        }
        let mut code = 0u64;
        let mut index = 0usize;
        for l in 1..=max_len as usize {
            code <<= 1;
            first_code[l] = code;
            first_index[l] = index;
            code += count[l] as u64;
            index += count[l];
        }
        CanonicalDecoder {
            first_code,
            first_index,
            count,
            symbols,
            max_len,
        }
    }

    /// Decodes one symbol from the reader; `None` on end-of-stream or a
    /// code not in the book.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Option<u32> {
        let mut code = 0u64;
        for l in 1..=self.max_len as usize {
            code = (code << 1) | r.read_bit()? as u64;
            if self.count[l] > 0 {
                let offset = code.wrapping_sub(self.first_code[l]);
                if code >= self.first_code[l] && (offset as usize) < self.count[l] {
                    return Some(self.symbols[self.first_index[l] + offset as usize]);
                }
            }
        }
        None
    }

    /// Decodes exactly `n` symbols.
    ///
    /// Returns `None` if the stream ends early or contains an invalid code.
    pub fn decode_n(&self, r: &mut BitReader<'_>, n: usize) -> Option<Vec<u32>> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.decode(r)?);
        }
        Some(out)
    }

    /// Longest code length this decoder handles (`n` in the paper's
    /// complexity model).
    pub fn max_len(&self) -> u8 {
        self.max_len
    }

    /// Dictionary size (`k` in the paper's complexity model).
    pub fn dictionary_size(&self) -> usize {
        self.symbols.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    fn round_trip(freqs: &[u64], message: &[u32]) {
        let book = CodeBook::from_freqs(freqs).unwrap();
        let mut w = BitWriter::new();
        for &s in message {
            book.encode_into(s, &mut w);
        }
        let bytes = w.into_bytes();
        let dec = book.decoder();
        let mut r = BitReader::new(&bytes);
        let out = dec.decode_n(&mut r, message.len()).expect("decodes");
        assert_eq!(out, message);
    }

    #[test]
    fn simple_round_trip() {
        round_trip(&[10, 3, 1, 1], &[0, 1, 2, 3, 0, 0, 1]);
    }

    #[test]
    fn skewed_round_trip() {
        let freqs: Vec<u64> = (0..32).map(|i| 1u64 << (31 - i)).collect();
        let msg: Vec<u32> = (0..32).chain((0..32).rev()).collect();
        round_trip(&freqs, &msg);
    }

    #[test]
    fn single_symbol_round_trip() {
        round_trip(&[0, 5], &[1, 1, 1]);
    }

    #[test]
    fn bounded_book_round_trip() {
        let freqs: Vec<u64> = (0..64).map(|i| (i as u64 + 1) * (i as u64 + 1)).collect();
        let book = CodeBook::bounded_from_freqs(&freqs, 9).unwrap();
        let msg: Vec<u32> = (0..64).collect();
        let mut w = BitWriter::new();
        for &s in &msg {
            book.encode_into(s, &mut w);
        }
        let bytes = w.into_bytes();
        let dec = book.decoder();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode_n(&mut r, msg.len()).unwrap(), msg);
    }

    #[test]
    fn truncated_stream_returns_none() {
        let book = CodeBook::from_freqs(&[1, 1, 1, 1]).unwrap();
        let dec = book.decoder();
        // One symbol needs 2 bits; give it only 1 byte = 4 symbols max,
        // then ask for 5.
        let mut w = BitWriter::new();
        for s in [0u32, 1, 2, 3] {
            book.encode_into(s, &mut w);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(dec.decode_n(&mut r, 5).is_none());
    }

    #[test]
    fn decoder_metadata_matches_book() {
        let freqs = [9u64, 4, 0, 2, 1];
        let book = CodeBook::from_freqs(&freqs).unwrap();
        let dec = book.decoder();
        assert_eq!(dec.dictionary_size(), 4);
        assert_eq!(dec.max_len(), book.max_len());
    }
}
