//! Canonical table-driven Huffman decoding.
//!
//! Models the software view of the PLA decoder: per-length `first_code` /
//! `first_index` tables over the canonical code space. Decoding consumes
//! one bit at a time, exactly like the paper's Huffman-tree hardware
//! (Figure 9) walks one level per multiplexer row.
//!
//! Decoding is fallible with a typed [`DecodeError`]: embedded ROMs see
//! real bit errors, and a corrupted stream must be distinguishable from
//! a legitimately exhausted one. `UnexpectedEos` means the stream ran
//! out mid-symbol; `InvalidCode` means the accumulated prefix can no
//! longer match any code in the book (detected at the earliest possible
//! bit); `LengthOverflow` means `max_len` bits were consumed without a
//! match — unreachable for complete canonical books, kept as a safety
//! net for hand-built tables.

use crate::bitio::BitReader;
use crate::code::CodeBook;
use std::fmt;

/// Why canonical decoding failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The bit stream ended in the middle of a codeword.
    UnexpectedEos {
        /// Bit position where the stream ran out.
        at_bit: u64,
    },
    /// The accumulated prefix exceeds every code in the book; no
    /// continuation can produce a valid symbol.
    InvalidCode {
        /// Bit position just past the offending bit.
        at_bit: u64,
    },
    /// `max_len` bits were read without reaching a code. Unreachable
    /// for complete canonical books; guards incomplete tables.
    LengthOverflow {
        /// Bit position after the final bit examined.
        at_bit: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEos { at_bit } => {
                write!(f, "bit stream ended mid-codeword at bit {at_bit}")
            }
            DecodeError::InvalidCode { at_bit } => {
                write!(f, "invalid Huffman code detected at bit {at_bit}")
            }
            DecodeError::LengthOverflow { at_bit } => {
                write!(f, "no code matched within max length at bit {at_bit}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decode-effort counters, tallied by the `*_counted` decode variants.
///
/// Plain (non-atomic) `u64`s by design: the decoders sit on the
/// simulator's hottest loop, and the uncounted entry points pass a
/// throwaway instance that the optimizer strips — callers that want the
/// numbers thread their own instance through and fold it into the
/// telemetry registry afterwards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCounters {
    /// Symbols successfully decoded.
    pub symbols: u64,
    /// Codewords that overflowed the first-level lookup table and took
    /// the bit-serial reference walk (the `Long` table entry). Always 0
    /// for the reference decoder itself.
    pub long_fallbacks: u64,
    /// Total bits consumed across all codewords (including the bits of
    /// a terminal error prefix). The paper's Figure-9 tree decoder
    /// resolves one level — one bit — per cycle, so this doubles as the
    /// modelled decode-stall cycle count.
    pub stall_bits: u64,
}

impl DecodeCounters {
    /// Folds another tally into this one.
    pub fn merge(&mut self, other: &DecodeCounters) {
        self.symbols += other.symbols;
        self.long_fallbacks += other.long_fallbacks;
        self.stall_bits += other.stall_bits;
    }
}

/// What the reference decode loop does with a fixed-width bit prefix —
/// the unit [`crate::lut::LutDecoder`] tabulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PrefixClass {
    /// A code of length `len` matches the top of the prefix.
    Sym {
        /// Decoded symbol.
        sym: u32,
        /// Codeword length in bits.
        len: u8,
    },
    /// The walk raises [`DecodeError::InvalidCode`] after `depth` bits.
    Invalid {
        /// Bits consumed before the error.
        depth: u8,
    },
    /// The walk raises [`DecodeError::LengthOverflow`] after `depth`
    /// (= `max_len`) bits.
    Overflow {
        /// Bits consumed before the error.
        depth: u8,
    },
    /// The codeword is longer than the prefix: more bits are needed.
    Long,
}

/// A canonical Huffman decoder built from a [`CodeBook`].
#[derive(Debug, Clone)]
pub struct CanonicalDecoder {
    /// `first_code[l]` = canonical code value of the first code of length l.
    first_code: Vec<u64>,
    /// `first_index[l]` = index into `symbols` of that first code.
    first_index: Vec<usize>,
    /// Number of codes of each length.
    count: Vec<usize>,
    /// Symbols in canonical order.
    symbols: Vec<u32>,
    /// `last_code[l]` = value of the deepest code, right-shifted to
    /// length l: a prefix of length l that exceeds this can never match.
    last_code: Vec<u64>,
    max_len: u8,
}

impl CanonicalDecoder {
    /// Builds the decoder tables.
    pub fn new(book: &CodeBook) -> CanonicalDecoder {
        let max_len = book.max_len();
        let mut symbols: Vec<u32> = (0..book.alphabet_size() as u32)
            .filter(|&s| book.len_of(s) > 0)
            .collect();
        symbols.sort_by_key(|&s| (book.len_of(s), s));
        let mut first_code = vec![0u64; max_len as usize + 1];
        let mut first_index = vec![0usize; max_len as usize + 1];
        let mut count = vec![0usize; max_len as usize + 1];
        for &s in &symbols {
            count[book.len_of(s) as usize] += 1;
        }
        let mut code = 0u64;
        let mut index = 0usize;
        for l in 1..=max_len as usize {
            code <<= 1;
            first_code[l] = code;
            first_index[l] = index;
            code += count[l] as u64;
            index += count[l];
        }
        // Deepest nonempty level and its last code value, projected up
        // to every shallower length for early invalid-prefix detection.
        let mut last_code = vec![0u64; max_len as usize + 1];
        let deepest = (1..=max_len as usize).rev().find(|&l| count[l] > 0);
        if let Some(j) = deepest {
            let last = first_code[j] + count[j] as u64 - 1;
            for (l, slot) in last_code.iter_mut().enumerate().skip(1) {
                *slot = if l <= j { last >> (j - l) } else { u64::MAX };
            }
        }
        CanonicalDecoder {
            first_code,
            first_index,
            count,
            symbols,
            last_code,
            max_len,
        }
    }

    /// Decodes one symbol from the reader.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, DecodeError> {
        let mut code = 0u64;
        for l in 1..=self.max_len as usize {
            let bit = r.read_bit().ok_or(DecodeError::UnexpectedEos {
                at_bit: r.bit_pos(),
            })? as u64;
            code = (code << 1) | bit;
            if self.count[l] > 0 {
                let offset = code.wrapping_sub(self.first_code[l]);
                if code >= self.first_code[l] && (offset as usize) < self.count[l] {
                    return Ok(self.symbols[self.first_index[l] + offset as usize]);
                }
            }
            // A prefix beyond the projection of the deepest last code
            // cannot be extended into any valid codeword: fail now
            // instead of consuming the rest of the block.
            if code > self.last_code[l] {
                return Err(DecodeError::InvalidCode {
                    at_bit: r.bit_pos(),
                });
            }
        }
        Err(DecodeError::LengthOverflow {
            at_bit: r.bit_pos(),
        })
    }

    /// Decodes one symbol while tallying decode effort: the bits
    /// consumed (= Figure-9 stall cycles, one tree level per cycle) and
    /// the symbol count. Behaviour is identical to
    /// [`CanonicalDecoder::decode`].
    ///
    /// # Errors
    ///
    /// Exactly the errors [`CanonicalDecoder::decode`] produces; the
    /// bits of the failing prefix are still charged to `stall_bits`.
    pub fn decode_counted(
        &self,
        r: &mut BitReader<'_>,
        counts: &mut DecodeCounters,
    ) -> Result<u32, DecodeError> {
        let start = r.bit_pos();
        let res = self.decode(r);
        counts.stall_bits += r.bit_pos() - start;
        if res.is_ok() {
            counts.symbols += 1;
        }
        res
    }

    /// Walks the reference decode loop over the top `nbits` bits of
    /// `prefix` without touching a reader — exactly the branch sequence
    /// [`CanonicalDecoder::decode`] takes, so [`crate::lut::LutDecoder`]
    /// can precompute the outcome (symbol, error and its depth) for
    /// every possible table index.
    pub(crate) fn classify_prefix(&self, prefix: u64, nbits: u32) -> PrefixClass {
        let mut code = 0u64;
        for l in 1..=self.max_len as u32 {
            if l > nbits {
                return PrefixClass::Long;
            }
            let bit = (prefix >> (nbits - l)) & 1;
            code = (code << 1) | bit;
            let li = l as usize;
            if self.count[li] > 0 {
                let offset = code.wrapping_sub(self.first_code[li]);
                if code >= self.first_code[li] && (offset as usize) < self.count[li] {
                    return PrefixClass::Sym {
                        sym: self.symbols[self.first_index[li] + offset as usize],
                        len: l as u8,
                    };
                }
            }
            if code > self.last_code[li] {
                return PrefixClass::Invalid { depth: l as u8 };
            }
        }
        PrefixClass::Overflow {
            depth: self.max_len,
        }
    }

    /// Decodes exactly `n` symbols, failing on the first corrupt or
    /// truncated codeword.
    pub fn decode_n(&self, r: &mut BitReader<'_>, n: usize) -> Result<Vec<u32>, DecodeError> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.decode(r)?);
        }
        Ok(out)
    }

    /// Longest code length this decoder handles (`n` in the paper's
    /// complexity model).
    pub fn max_len(&self) -> u8 {
        self.max_len
    }

    /// Dictionary size (`k` in the paper's complexity model).
    pub fn dictionary_size(&self) -> usize {
        self.symbols.len()
    }

    /// Serializes the decode tables to bytes for integrity checking.
    ///
    /// The layout is deterministic (lengths then symbols, little
    /// endian), so equal decoders produce equal images and any bit
    /// difference in the tables changes the image.
    pub fn table_image(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(self.max_len);
        for l in 0..=self.max_len as usize {
            out.extend_from_slice(&(self.count[l] as u32).to_le_bytes());
            out.extend_from_slice(&self.first_code[l].to_le_bytes());
            out.extend_from_slice(&(self.first_index[l] as u32).to_le_bytes());
        }
        for &s in &self.symbols {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    fn round_trip(freqs: &[u64], message: &[u32]) {
        let book = CodeBook::from_freqs(freqs).unwrap();
        let mut w = BitWriter::new();
        for &s in message {
            book.encode_into(s, &mut w);
        }
        let bytes = w.into_bytes();
        let dec = book.decoder();
        let mut r = BitReader::new(&bytes);
        let out = dec.decode_n(&mut r, message.len()).expect("decodes");
        assert_eq!(out, message);
    }

    #[test]
    fn simple_round_trip() {
        round_trip(&[10, 3, 1, 1], &[0, 1, 2, 3, 0, 0, 1]);
    }

    #[test]
    fn skewed_round_trip() {
        let freqs: Vec<u64> = (0..32).map(|i| 1u64 << (31 - i)).collect();
        let msg: Vec<u32> = (0..32).chain((0..32).rev()).collect();
        round_trip(&freqs, &msg);
    }

    #[test]
    fn single_symbol_round_trip() {
        round_trip(&[0, 5], &[1, 1, 1]);
    }

    #[test]
    fn bounded_book_round_trip() {
        let freqs: Vec<u64> = (0..64).map(|i| (i as u64 + 1) * (i as u64 + 1)).collect();
        let book = CodeBook::bounded_from_freqs(&freqs, 9).unwrap();
        let msg: Vec<u32> = (0..64).collect();
        let mut w = BitWriter::new();
        for &s in &msg {
            book.encode_into(s, &mut w);
        }
        let bytes = w.into_bytes();
        let dec = book.decoder();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode_n(&mut r, msg.len()).unwrap(), msg);
    }

    #[test]
    fn truncated_stream_is_unexpected_eos() {
        let book = CodeBook::from_freqs(&[1, 1, 1, 1]).unwrap();
        let dec = book.decoder();
        // One symbol needs 2 bits; give it only 1 byte = 4 symbols max,
        // then ask for 5.
        let mut w = BitWriter::new();
        for s in [0u32, 1, 2, 3] {
            book.encode_into(s, &mut w);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            dec.decode_n(&mut r, 5),
            Err(DecodeError::UnexpectedEos { .. })
        ));
    }

    #[test]
    fn empty_stream_is_unexpected_eos() {
        let book = CodeBook::from_freqs(&[3, 2, 1]).unwrap();
        let dec = book.decoder();
        let mut r = BitReader::new(&[]);
        assert_eq!(
            dec.decode(&mut r),
            Err(DecodeError::UnexpectedEos { at_bit: 0 })
        );
    }

    #[test]
    fn invalid_prefix_detected_early() {
        // Lengths {1, 2, 2} leave no length-3 codes: a skewed book where
        // a sufficiently large prefix can never resolve.
        let book = CodeBook::from_freqs(&[4, 1, 1]).unwrap();
        let dec = book.decoder();
        // All-ones forever would decode the deepest code repeatedly;
        // instead build a book with a hole: lengths {1,3,3} is not
        // canonical-complete, so exercise via an incomplete stream of a
        // deep book: prefix 11 when the deepest code is 10 (len 2).
        // from_freqs(&[4,1,1]) gives codes 0, 10, 11 — complete, so any
        // prefix resolves. Use a bounded book with an uncoded tail
        // instead: freqs [8, 4, 2, 1, 0] → lengths 1,2,3,3 (complete).
        // Canonical Huffman books over all-coded alphabets are always
        // complete, so InvalidCode requires corrupt *tables* or a
        // truncated symbol set. Emulate by decoding with a decoder whose
        // book is missing the deep half: symbols {0,1} of a 3-symbol
        // book, i.e. a book built from lengths directly.
        let partial = CodeBook::from_lengths(vec![1, 2, 0]);
        let pdec = partial.decoder();
        // Code space: 0 (len 1), 10 (len 2); prefix 11 is invalid.
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(
            pdec.decode(&mut r),
            Err(DecodeError::InvalidCode { at_bit: 2 })
        ));
        // The complete book still decodes the same stream fine.
        let mut r2 = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r2), Ok(2));
    }

    #[test]
    fn decoder_metadata_matches_book() {
        let freqs = [9u64, 4, 0, 2, 1];
        let book = CodeBook::from_freqs(&freqs).unwrap();
        let dec = book.decoder();
        assert_eq!(dec.dictionary_size(), 4);
        assert_eq!(dec.max_len(), book.max_len());
    }

    #[test]
    fn table_image_is_deterministic_and_sensitive() {
        let book = CodeBook::from_freqs(&[9, 4, 2, 1]).unwrap();
        let a = book.decoder().table_image();
        let b = book.decoder().table_image();
        assert_eq!(a, b);
        let other = CodeBook::from_freqs(&[1, 1, 1, 1]).unwrap();
        assert_ne!(a, other.decoder().table_image());
    }
}
