//! The paper's worst-case Huffman-decoder hardware complexity model
//! (§3.5, Figures 9–10).
//!
//! The decoder is modelled as a full multiplexer tree of depth `n` (longest
//! code, in bits) over `k` dictionary entries of up to `m` bits each,
//! implemented with CMOS transmission gates (two transistors per mux).
//! The worst-case transistor count is
//!
//! ```text
//! T = 2m(2^n − 1) + 4m(2^n − 2^(n−1) − 1) + 2n
//! ```
//!
//! — the first term is the mux tree over `m`-bit values, the second the
//! inverter pairs for interior rows (the first row passes constants and
//! needs only one transistor), the last the `n` select-line inverters. The
//! paper uses this purely as a *comparison criterion* between schemes, not
//! as a real layout estimate; so do we.

/// Parameters of a Huffman decoder in the paper's model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecoderComplexity {
    /// Longest Huffman code, bits.
    pub n: u32,
    /// Dictionary entries.
    pub k: usize,
    /// Longest dictionary entry, bits (8 for byte-wise, 40 for Full, the
    /// stream width for stream schemes).
    pub m: u32,
}

impl DecoderComplexity {
    /// Worst-case transistor estimate `T`.
    ///
    /// Saturates at `u128::MAX` for absurd inputs (n ≥ ~120).
    pub fn transistors(&self) -> u128 {
        decoder_transistors(self.n, self.m)
    }

    /// A rough throughput-normalized figure: transistors per dictionary
    /// entry. Exposed because Figure 10's discussion contrasts decoder
    /// size against dictionary size.
    pub fn transistors_per_entry(&self) -> f64 {
        if self.k == 0 {
            return 0.0;
        }
        self.transistors() as f64 / self.k as f64
    }
}

/// The paper's equation: `T = 2m(2^n − 1) + 4m(2^n − 2^(n−1) − 1) + 2n`.
///
/// `n` is the longest code length in bits and `m` the longest dictionary
/// entry in bits. For `n = 0` (degenerate single-code books are given
/// n = 1 by the code builder, so this only happens for empty books) the
/// result is 0.
pub fn decoder_transistors(n: u32, m: u32) -> u128 {
    if n == 0 {
        return 0;
    }
    let m = m as u128;
    let n_ = n as u128;
    let pow = |e: u32| -> u128 { 1u128.checked_shl(e).unwrap_or(u128::MAX) };
    let two_n = pow(n);
    let two_n1 = pow(n - 1);
    let t1 = 2u128
        .saturating_mul(m)
        .saturating_mul(two_n.saturating_sub(1));
    let t2 = 4u128
        .saturating_mul(m)
        .saturating_mul(two_n.saturating_sub(two_n1).saturating_sub(1));
    t1.saturating_add(t2).saturating_add(2 * n_)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula_matches_hand_computation() {
        // n=4, m=8: T = 2*8*(16-1) + 4*8*(16-8-1) + 2*4 = 240 + 224 + 8 = 472.
        assert_eq!(decoder_transistors(4, 8), 472);
    }

    #[test]
    fn n_one_edge_case() {
        // n=1, m=8: T = 2*8*(2-1) + 4*8*(2-1-1) + 2 = 16 + 0 + 2 = 18.
        assert_eq!(decoder_transistors(1, 8), 18);
    }

    #[test]
    fn zero_n_is_zero() {
        assert_eq!(decoder_transistors(0, 40), 0);
    }

    #[test]
    fn grows_exponentially_in_n() {
        let t8 = decoder_transistors(8, 40);
        let t16 = decoder_transistors(16, 40);
        assert!(t16 > 200 * t8);
    }

    #[test]
    fn grows_linearly_in_m() {
        let t8 = decoder_transistors(10, 8);
        let t40 = decoder_transistors(10, 40);
        // Ratio is (2m+4m)·stuff + 2n, close to 5x for m 8→40.
        let ratio = t40 as f64 / t8 as f64;
        assert!((ratio - 5.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn paper_ballpark_for_published_decoders() {
        // §3.5 cites real decoders: 114 entries, codes 1..16 bits, budget
        // 10k–28k transistors. Our *worst-case* model must be at least that
        // (it is a full-tree upper bound, hugely pessimistic at n=16).
        let t = decoder_transistors(16, 8);
        assert!(t > 28_000);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let t = decoder_transistors(130, 40);
        assert_eq!(t, u128::MAX);
    }

    #[test]
    fn per_entry_metric() {
        let c = DecoderComplexity { n: 4, k: 10, m: 8 };
        assert!((c.transistors_per_entry() - 47.2).abs() < 1e-9);
        let empty = DecoderComplexity { n: 4, k: 0, m: 8 };
        assert_eq!(empty.transistors_per_entry(), 0.0);
    }
}
