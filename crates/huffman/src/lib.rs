//! # tinker-huffman — Huffman coding for cached code compression
//!
//! Huffman machinery used by the compression schemes of Larin & Conte
//! (MICRO-32, 1999): canonical Huffman codes over arbitrary dense symbol
//! alphabets, *length-limited* codes via the package–merge algorithm (the
//! paper's "Bounded Huffman" escape for codes too long for the IFetch
//! hardware), MSB-first bit streams, a canonical table decoder, and the
//! paper's worst-case hardware-complexity model for a Huffman-tree decoder
//! (§3.5, Figure 9):
//!
//! ```text
//! T = 2m(2^n − 1) + 4m(2^n − 2^(n−1) − 1) + 2n
//! ```
//!
//! # Example
//!
//! ```
//! use tinker_huffman::{CodeBook, BitWriter, BitReader};
//!
//! # fn main() -> Result<(), tinker_huffman::HuffmanError> {
//! let freqs = [10u64, 3, 1, 1];
//! let book = CodeBook::from_freqs(&freqs)?;
//! let mut w = BitWriter::new();
//! for sym in [0u32, 1, 0, 3, 0] {
//!     book.encode_into(sym, &mut w);
//! }
//! let bytes = w.into_bytes();
//! let decoder = book.decoder();
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(decoder.decode(&mut r), Ok(0));
//! assert_eq!(decoder.decode(&mut r), Ok(1));
//! # Ok(())
//! # }
//! ```

pub mod bitio;
pub mod bounded;
pub mod code;
pub mod complexity;
pub mod decode;
pub mod dict;
pub mod interleave;
pub mod lut;

pub use bitio::{BitReader, BitWriter};
pub use code::{CodeBook, HuffmanError};
pub use complexity::{decoder_transistors, DecoderComplexity};
pub use decode::{CanonicalDecoder, DecodeCounters, DecodeError};
pub use dict::Dictionary;
pub use interleave::{InterleavedDecoder, LaneResult, StreamLane, BURST, PIPE};
pub use lut::LutDecoder;

/// Shannon entropy of a frequency distribution, in bits per symbol.
/// Zero-frequency entries are ignored. Returns 0.0 for degenerate inputs.
pub fn entropy_bits(freqs: &[u64]) -> f64 {
    let total: u64 = freqs.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    freqs
        .iter()
        .filter(|&&f| f > 0)
        .map(|&f| {
            let p = f as f64 / total;
            -p * p.log2()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform_is_log2() {
        let freqs = [1u64; 8];
        assert!((entropy_bits(&freqs) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_of_degenerate_is_zero() {
        assert_eq!(entropy_bits(&[]), 0.0);
        assert_eq!(entropy_bits(&[0, 0]), 0.0);
        assert_eq!(entropy_bits(&[5]), 0.0);
    }

    #[test]
    fn entropy_ignores_zero_entries() {
        assert!((entropy_bits(&[2, 0, 2]) - 1.0).abs() < 1e-12);
    }
}
