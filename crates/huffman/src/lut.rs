//! Two-level table-driven canonical Huffman decoding.
//!
//! [`LutDecoder`] is the software fast path over the same canonical
//! code space as [`CanonicalDecoder`]: a direct-indexed first-level
//! table of [`DEFAULT_LUT_BITS`] bits resolves every short code (one
//! peek, one table load, one consume), while codes longer than the
//! table index — rare by construction, since Huffman assigns long codes
//! to rare symbols — fall back to the bit-serial `first_code` walk of
//! the reference decoder.
//!
//! The decoder is *observationally identical* to [`CanonicalDecoder`]:
//! the same symbols in the same order, and on corrupt or truncated
//! input the same [`DecodeError`] variant at the same bit position.
//! This is guaranteed by construction — every table entry is
//! precomputed by running the reference decode loop over its index
//! (see `CanonicalDecoder::classify_prefix`) — and enforced by the
//! differential proptests in `tests/proptests.rs`. The reference
//! decoder remains the model of the paper's Figure-9 bit-per-level
//! hardware; this table is how the *simulator* gets through compressed
//! images quickly, not a change to the modelled machine.

use crate::bitio::BitReader;
use crate::code::CodeBook;
use crate::decode::{CanonicalDecoder, DecodeCounters, DecodeError, PrefixClass};

/// Default first-level table index width, in bits. 2^11 entries cover
/// every code the byte scheme can emit (bound 10) and the popular head
/// of every other scheme's book; the table is 16 KiB of entries —
/// comfortably cache-resident.
pub const DEFAULT_LUT_BITS: u32 = 11;

/// One first-level table entry: the precomputed outcome of feeding the
/// entry's index bits to the reference decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Entry {
    /// A code of length `len` matches: consume `len` bits, emit `sym`.
    Sym { sym: u32, len: u8 },
    /// The prefix dies after `depth` bits: consume them and raise
    /// [`DecodeError::InvalidCode`].
    Invalid { depth: u8 },
    /// `max_len` (= `depth`) bits match nothing: consume them and raise
    /// [`DecodeError::LengthOverflow`] (incomplete hand-built books).
    Overflow { depth: u8 },
    /// The codeword extends beyond the table index: take the slow walk.
    Long,
}

impl Entry {
    /// The interleaved kernel's packed form: `(sym << 8) | len` for a
    /// code fully resolved by this entry, else 0 — "not a packed hit,
    /// replay the symbol through [`LutDecoder::decode_counted`]". The
    /// error and `Long` classes (and the never-seen-in-practice case of
    /// a symbol too wide for 24 bits) all take the replay path, which
    /// reproduces their exact behaviour.
    pub(crate) fn packed(self) -> u32 {
        match self {
            Entry::Sym { sym, len } if sym < (1 << 24) => (sym << 8) | len as u32,
            _ => 0,
        }
    }
}

/// A two-level lookup-table canonical Huffman decoder.
///
/// Built from the same [`CodeBook`] as the reference
/// [`CanonicalDecoder`], which it embeds both as the long-code fallback
/// and as the near-end-of-stream path (where full lookahead is not
/// available and per-bit consumption reproduces the exact error
/// positions).
#[derive(Debug, Clone)]
pub struct LutDecoder {
    /// First-level index width in bits (1..=16, capped at `max_len`).
    lut_bits: u32,
    /// Direct-indexed first level: `1 << lut_bits` entries.
    table: Vec<Entry>,
    /// The bit-serial reference decoder: long codes, short streams.
    reference: CanonicalDecoder,
}

impl LutDecoder {
    /// Builds the decoder with the default first-level width.
    pub fn new(book: &CodeBook) -> LutDecoder {
        LutDecoder::with_lut_bits(book, DEFAULT_LUT_BITS)
    }

    /// Builds the decoder with an explicit first-level width (clamped
    /// to 1..=16 and to the book's maximum code length).
    pub fn with_lut_bits(book: &CodeBook, lut_bits: u32) -> LutDecoder {
        let reference = CanonicalDecoder::new(book);
        let lut_bits = lut_bits.clamp(1, 16).min(reference.max_len().max(1) as u32);
        let table = (0u64..1 << lut_bits)
            .map(|prefix| match reference.classify_prefix(prefix, lut_bits) {
                PrefixClass::Sym { sym, len } => Entry::Sym { sym, len },
                PrefixClass::Invalid { depth } => Entry::Invalid { depth },
                PrefixClass::Overflow { depth } => Entry::Overflow { depth },
                PrefixClass::Long => Entry::Long,
            })
            .collect();
        LutDecoder {
            lut_bits,
            table,
            reference,
        }
    }

    /// Decodes one symbol from the reader.
    ///
    /// # Errors
    ///
    /// Exactly the [`DecodeError`]s (variant and `at_bit`) that
    /// [`CanonicalDecoder::decode`] would produce at this position.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u32, DecodeError> {
        if r.available() < self.lut_bits {
            r.refill();
        }
        if r.available() >= self.lut_bits {
            match self.table[r.peek(self.lut_bits) as usize] {
                Entry::Sym { sym, len } => {
                    r.consume(len as u32);
                    return Ok(sym);
                }
                Entry::Invalid { depth } => {
                    r.consume(depth as u32);
                    return Err(DecodeError::InvalidCode {
                        at_bit: r.bit_pos(),
                    });
                }
                Entry::Overflow { depth } => {
                    r.consume(depth as u32);
                    return Err(DecodeError::LengthOverflow {
                        at_bit: r.bit_pos(),
                    });
                }
                Entry::Long => {}
            }
        }
        self.decode_slow(r)
    }

    /// [`LutDecoder::decode`] with decode-effort telemetry folded into
    /// `counts` (see [`DecodeCounters`]). Behaviour — symbols, cursor
    /// positions and errors — is identical.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`LutDecoder::decode`] produces; the failing
    /// prefix's bits are still charged to `counts.stall_bits`.
    #[inline]
    pub fn decode_counted(
        &self,
        r: &mut BitReader<'_>,
        counts: &mut DecodeCounters,
    ) -> Result<u32, DecodeError> {
        if r.available() < self.lut_bits {
            r.refill();
        }
        if r.available() >= self.lut_bits {
            match self.table[r.peek(self.lut_bits) as usize] {
                Entry::Sym { sym, len } => {
                    r.consume(len as u32);
                    counts.symbols += 1;
                    counts.stall_bits += len as u64;
                    return Ok(sym);
                }
                Entry::Invalid { depth } => {
                    r.consume(depth as u32);
                    counts.stall_bits += depth as u64;
                    return Err(DecodeError::InvalidCode {
                        at_bit: r.bit_pos(),
                    });
                }
                Entry::Overflow { depth } => {
                    r.consume(depth as u32);
                    counts.stall_bits += depth as u64;
                    return Err(DecodeError::LengthOverflow {
                        at_bit: r.bit_pos(),
                    });
                }
                // Only a genuine table overflow counts as a fallback;
                // the short-stream path below never consulted the table.
                Entry::Long => counts.long_fallbacks += 1,
            }
        }
        let start = r.bit_pos();
        let res = self.decode_slow(r);
        counts.stall_bits += r.bit_pos() - start;
        if res.is_ok() {
            counts.symbols += 1;
        }
        res
    }

    /// The overflow path: codes longer than the table index, and
    /// streams with fewer than `lut_bits` bits left (where the
    /// reference's per-bit consumption pins the exact EOS position).
    #[cold]
    fn decode_slow(&self, r: &mut BitReader<'_>) -> Result<u32, DecodeError> {
        self.reference.decode(r)
    }

    /// Decodes exactly `n` symbols, failing on the first corrupt or
    /// truncated codeword.
    ///
    /// Equivalent to `n` calls of [`LutDecoder::decode`] but amortizes
    /// each accumulator refill over every short code it covers (~8
    /// symbols per refill at typical code lengths) — the throughput
    /// path the scheme codecs decode whole blocks with.
    pub fn decode_n(&self, r: &mut BitReader<'_>, n: usize) -> Result<Vec<u32>, DecodeError> {
        self.decode_n_counted(r, n, &mut DecodeCounters::default())
    }

    /// [`LutDecoder::decode_n`] with decode-effort telemetry: bits
    /// consumed (= modelled stall cycles), symbols decoded, and how many
    /// codewords overflowed the table into the bit-serial walk. The
    /// counters are plain `u64`s folded into `counts`; `decode_n` passes
    /// a throwaway instance, so the uncounted path pays nothing.
    ///
    /// # Errors
    ///
    /// Exactly the errors `n` calls of [`LutDecoder::decode`] would
    /// produce; the failing prefix's bits are still charged to
    /// `counts.stall_bits`.
    pub fn decode_n_counted(
        &self,
        r: &mut BitReader<'_>,
        n: usize,
        counts: &mut DecodeCounters,
    ) -> Result<Vec<u32>, DecodeError> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            r.refill();
            if r.available() < self.lut_bits {
                // Refill tops up to ≥57 > `lut_bits` bits away from the
                // buffer tail, so this is a genuinely short stream: the
                // one-symbol path pins the exact EOS behavior. (Not a
                // `Long` fallback — the table was never consulted.)
                let start = r.bit_pos();
                let res = self.decode(r);
                counts.stall_bits += r.bit_pos() - start;
                match res {
                    Ok(sym) => {
                        counts.symbols += 1;
                        out.push(sym);
                    }
                    Err(e) => return Err(e),
                }
                continue;
            }
            while out.len() < n && r.available() >= self.lut_bits {
                match self.table[r.peek(self.lut_bits) as usize] {
                    Entry::Sym { sym, len } => {
                        r.consume(len as u32);
                        counts.symbols += 1;
                        counts.stall_bits += len as u64;
                        out.push(sym);
                    }
                    Entry::Invalid { depth } => {
                        r.consume(depth as u32);
                        counts.stall_bits += depth as u64;
                        return Err(DecodeError::InvalidCode {
                            at_bit: r.bit_pos(),
                        });
                    }
                    Entry::Overflow { depth } => {
                        r.consume(depth as u32);
                        counts.stall_bits += depth as u64;
                        return Err(DecodeError::LengthOverflow {
                            at_bit: r.bit_pos(),
                        });
                    }
                    Entry::Long => {
                        counts.long_fallbacks += 1;
                        let start = r.bit_pos();
                        let res = self.decode_slow(r);
                        counts.stall_bits += r.bit_pos() - start;
                        match res {
                            Ok(sym) => {
                                counts.symbols += 1;
                                out.push(sym);
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// First-level index width in bits.
    pub fn lut_bits(&self) -> u32 {
        self.lut_bits
    }

    /// The raw first-level table (for the interleaved kernel's packed
    /// mirror).
    pub(crate) fn entries(&self) -> &[Entry] {
        &self.table
    }

    /// Longest code length this decoder handles.
    pub fn max_len(&self) -> u8 {
        self.reference.max_len()
    }

    /// Dictionary size (`k` in the paper's complexity model).
    pub fn dictionary_size(&self) -> usize {
        self.reference.dictionary_size()
    }

    /// The embedded bit-serial reference decoder.
    pub fn reference(&self) -> &CanonicalDecoder {
        &self.reference
    }

    /// Serialized decode tables for integrity checking — byte-identical
    /// to [`CanonicalDecoder::table_image`] for the same book, so
    /// dictionary CRCs are unchanged by the fast path.
    pub fn table_image(&self) -> Vec<u8> {
        self.reference.table_image()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitio::BitWriter;

    /// Decodes `stream` to exhaustion with both decoders, asserting
    /// identical symbols, positions and terminal error.
    fn assert_differential(book: &CodeBook, stream: &[u8], start: u64) {
        let reference = book.decoder();
        let lut = book.lut_decoder();
        let mut a = BitReader::at_bit(stream, start);
        let mut b = BitReader::at_bit(stream, start);
        loop {
            let x = reference.decode(&mut a);
            let y = lut.decode(&mut b);
            assert_eq!(x, y, "divergence at bit {}", a.bit_pos());
            assert_eq!(a.bit_pos(), b.bit_pos(), "cursor drift");
            if x.is_err() {
                break;
            }
        }
    }

    #[test]
    fn short_codes_round_trip_via_table() {
        let freqs = [40u64, 20, 10, 5, 2, 1];
        let book = CodeBook::from_freqs(&freqs).unwrap();
        let msg: Vec<u32> = (0..6).chain((0..6).rev()).collect();
        let mut w = BitWriter::new();
        for &s in &msg {
            book.encode_into(s, &mut w);
        }
        let bytes = w.into_bytes();
        let lut = book.lut_decoder();
        let mut r = BitReader::new(&bytes);
        assert_eq!(lut.decode_n(&mut r, msg.len()).unwrap(), msg);
    }

    #[test]
    fn long_codes_take_the_overflow_path() {
        // Exponential frequencies force codes far past 11 bits.
        let freqs: Vec<u64> = (0..30).map(|i| 1u64 << i).collect();
        let book = CodeBook::from_freqs(&freqs).unwrap();
        assert!(book.max_len() > DEFAULT_LUT_BITS as u8);
        let msg: Vec<u32> = (0..30).chain((0..30).rev()).collect();
        let mut w = BitWriter::new();
        for &s in &msg {
            book.encode_into(s, &mut w);
        }
        let bytes = w.into_bytes();
        let lut = book.lut_decoder();
        let mut r = BitReader::new(&bytes);
        assert_eq!(lut.decode_n(&mut r, msg.len()).unwrap(), msg);
        assert_differential(&book, &bytes, 0);
    }

    #[test]
    fn garbage_streams_match_reference_errors() {
        let freqs: Vec<u64> = (0..24).map(|i| (i as u64 + 1) * 3).collect();
        let book = CodeBook::from_freqs(&freqs).unwrap();
        // Deterministic pseudo-random garbage.
        let mut x = 0x2545F4914F6CDD1Du64;
        let bytes: Vec<u8> = (0..96)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 32) as u8
            })
            .collect();
        for start in 0..8 {
            assert_differential(&book, &bytes, start);
        }
    }

    #[test]
    fn incomplete_book_invalid_positions_match() {
        // Code space: 0 (len 1), 10 (len 2); prefix 11 is invalid.
        let book = CodeBook::from_lengths(vec![1, 2, 0]);
        let lut = book.lut_decoder();
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(
            lut.decode(&mut r),
            Err(DecodeError::InvalidCode { at_bit: 2 })
        );
        assert_differential(&book, &bytes, 0);
    }

    #[test]
    fn truncated_and_empty_streams_match() {
        let book = CodeBook::from_freqs(&[1, 1, 1, 1]).unwrap();
        let lut = book.lut_decoder();
        let mut r = BitReader::new(&[]);
        assert_eq!(
            lut.decode(&mut r),
            Err(DecodeError::UnexpectedEos { at_bit: 0 })
        );
        let mut w = BitWriter::new();
        for s in [0u32, 1, 2, 3] {
            book.encode_into(s, &mut w);
        }
        let bytes = w.into_bytes();
        assert_differential(&book, &bytes, 0);
    }

    #[test]
    fn decode_n_matches_repeated_decode_including_errors() {
        let freqs: Vec<u64> = (0..24).map(|i| (i as u64 + 1) * 3).collect();
        let book = CodeBook::from_freqs(&freqs).unwrap();
        let lut = book.lut_decoder();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let bytes: Vec<u8> = (0..64)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect();
        for start in 0..8 {
            let mut a = BitReader::at_bit(&bytes, start);
            let mut syms = Vec::new();
            let err = loop {
                match lut.decode(&mut a) {
                    Ok(s) => syms.push(s),
                    Err(e) => break e,
                }
            };
            // Asking for one symbol too many must surface the same
            // prefix and the same terminal error at the same position.
            let mut b = BitReader::at_bit(&bytes, start);
            assert_eq!(lut.decode_n(&mut b, syms.len() + 1), Err(err));
            assert_eq!(a.bit_pos(), b.bit_pos(), "cursor drift after error");
            let mut c = BitReader::at_bit(&bytes, start);
            assert_eq!(lut.decode_n(&mut c, syms.len()).unwrap(), syms);
        }
    }

    #[test]
    fn counted_decode_tallies_bits_symbols_and_fallbacks() {
        // Exponential frequencies force codes past the table index, so
        // the Long path is exercised.
        let freqs: Vec<u64> = (0..30).map(|i| 1u64 << i).collect();
        let book = CodeBook::from_freqs(&freqs).unwrap();
        let lut = book.lut_decoder();
        assert!(book.max_len() > lut.lut_bits() as u8);
        let msg: Vec<u32> = (0..30).chain((0..30).rev()).collect();
        let mut w = BitWriter::new();
        let mut total_bits = 0u64;
        let mut expect_long = 0u64;
        for &s in &msg {
            book.encode_into(s, &mut w);
            total_bits += book.len_of(s) as u64;
            if book.len_of(s) as u32 > lut.lut_bits() {
                expect_long += 1;
            }
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let mut c = DecodeCounters::default();
        assert_eq!(
            lut.decode_n_counted(&mut r, msg.len(), &mut c).unwrap(),
            msg
        );
        assert_eq!(c.symbols, msg.len() as u64);
        assert_eq!(c.stall_bits, total_bits, "every code bit is a stall bit");
        // Long codes near the stream tail may resolve through the
        // short-stream path instead of a table hit, so the fallback
        // count is bounded by — and normally equal to — the long-code
        // population.
        assert!(c.long_fallbacks >= 1 && c.long_fallbacks <= expect_long);
        // The reference decoder counts the same bits and symbols.
        let mut r2 = BitReader::new(&bytes);
        let mut c2 = DecodeCounters::default();
        let reference = book.decoder();
        for _ in 0..msg.len() {
            reference.decode_counted(&mut r2, &mut c2).unwrap();
        }
        assert_eq!(c2.symbols, c.symbols);
        assert_eq!(c2.stall_bits, c.stall_bits);
        assert_eq!(c2.long_fallbacks, 0);
    }

    #[test]
    fn metadata_and_table_image_match_reference() {
        let book = CodeBook::from_freqs(&[9, 4, 2, 1]).unwrap();
        let reference = book.decoder();
        let lut = book.lut_decoder();
        assert_eq!(lut.max_len(), reference.max_len());
        assert_eq!(lut.dictionary_size(), reference.dictionary_size());
        assert_eq!(lut.table_image(), reference.table_image());
        assert!(lut.lut_bits() <= DEFAULT_LUT_BITS);
    }

    #[test]
    fn tiny_books_clamp_the_table() {
        let book = CodeBook::from_freqs(&[0, 5]).unwrap();
        let lut = book.lut_decoder();
        assert_eq!(lut.lut_bits(), 1);
        let mut w = BitWriter::new();
        for _ in 0..3 {
            book.encode_into(1, &mut w);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(lut.decode_n(&mut r, 3).unwrap(), vec![1, 1, 1]);
        assert_differential(&book, &bytes, 0);
    }
}
