//! # ccc-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §3 for the
//! index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig05_compression` | Figure 5 — code size per scheme |
//! | `fig07_att_size` | Figure 7 — ATB characteristics / total size with ATT |
//! | `fig10_decoder` | Figure 10 — Huffman decoder complexity |
//! | `fig13_cache_study` | Figure 13 — IPC per encoding per benchmark |
//! | `fig14_bus_power` | Figure 14 — memory-bus bit flips |
//! | `table1_penalties` | Table 1 — cycle count assumptions |
//! | `table2_formats` | Table 2 — TEPIC formats |
//! | `diag` | workload inventory sanity |
//!
//! This library holds the shared plumbing: the parallel prepared-
//! workload [`engine`] (worker pool + content-addressed artifact cache),
//! the pure figure renderers ([`figures`]), and the text-table renderer.

pub mod engine;
pub mod figures;
pub mod history;
pub mod serve;

use ccc_core::EncodedProgram;
use ifetch_sim::{simulate, FetchConfig, FetchResult};
use tepic_isa::Program;
use tinker_workloads::Workload;
use yula::BlockTrace;

/// A fully prepared workload: compiled, traced, and encoded under every
/// scheme of the paper's Figure-5 matrix plus the uncompressed base.
#[derive(Debug)]
pub struct Prepared {
    /// The workload descriptor.
    pub workload: &'static Workload,
    /// The compiled program.
    pub program: Program,
    /// Its dynamic block trace.
    pub trace: BlockTrace,
    /// Uncompressed image.
    pub base_img: EncodedProgram,
    /// Byte-wise Huffman image.
    pub byte_img: EncodedProgram,
    /// Stream Huffman image (the `stream` configuration).
    pub stream_img: EncodedProgram,
    /// Stream Huffman image (the `stream_1` configuration).
    pub stream1_img: EncodedProgram,
    /// Full-op compressed image.
    pub compressed_img: EncodedProgram,
    /// Tailored image.
    pub tailored_img: EncodedProgram,
}

impl Prepared {
    /// The encoded image for a figure scheme name (including `base`).
    pub fn image(&self, scheme: &str) -> Option<&EncodedProgram> {
        match scheme {
            "base" => Some(&self.base_img),
            "byte" => Some(&self.byte_img),
            "stream" => Some(&self.stream_img),
            "stream_1" => Some(&self.stream1_img),
            "full" => Some(&self.compressed_img),
            "tailored" => Some(&self.tailored_img),
            _ => None,
        }
    }

    /// The matrix images in figure order, named.
    pub fn images(&self) -> impl Iterator<Item = (&'static str, &EncodedProgram)> {
        [
            ("byte", &self.byte_img),
            ("stream", &self.stream_img),
            ("stream_1", &self.stream1_img),
            ("full", &self.compressed_img),
            ("tailored", &self.tailored_img),
        ]
        .into_iter()
    }
}

/// Compiles, runs and encodes every workload through an engine
/// configured from the environment (`CCC_JOBS`, `CCC_CACHE_DIR`,
/// `CCC_NO_CACHE` — see [`engine::Engine::from_env`]).
///
/// # Errors
///
/// [`engine::PrepareErrors`] aggregating every workload that failed.
pub fn prepare_all() -> Result<Vec<Prepared>, engine::PrepareErrors> {
    engine::Engine::from_env().prepare_all()
}

/// The Figure-13 quartet for one prepared workload.
pub struct CacheStudy {
    /// Perfect cache/predictor bound.
    pub ideal: FetchResult,
    /// Uncompressed baseline.
    pub base: FetchResult,
    /// Full-op compressed with L0 buffer.
    pub compressed: FetchResult,
    /// Tailored ISA.
    pub tailored: FetchResult,
}

/// Runs the four fetch configurations over one prepared workload, using
/// the paper-spec (16KB/20KB) caches. With our workload sizes these see
/// almost no capacity pressure; use [`cache_study_scaled`] for the
/// Figure-13 reproduction.
pub fn cache_study(p: &Prepared) -> CacheStudy {
    CacheStudy {
        ideal: simulate(&p.program, &p.base_img, &p.trace, &FetchConfig::ideal()),
        base: simulate(&p.program, &p.base_img, &p.trace, &FetchConfig::base()),
        compressed: simulate(
            &p.program,
            &p.compressed_img,
            &p.trace,
            &FetchConfig::compressed(),
        ),
        tailored: simulate(
            &p.program,
            &p.tailored_img,
            &p.trace,
            &FetchConfig::tailored(),
        ),
    }
}

/// Runs the four fetch configurations with caches scaled to the
/// workload's code size, preserving the paper's code:cache pressure
/// (see [`FetchConfig::scaled`] and DESIGN.md section 4).
pub fn cache_study_scaled(p: &Prepared) -> CacheStudy {
    use ifetch_sim::EncodingClass as E;
    let code = p.base_img.total_bytes();
    CacheStudy {
        ideal: simulate(&p.program, &p.base_img, &p.trace, &FetchConfig::ideal()),
        base: simulate(
            &p.program,
            &p.base_img,
            &p.trace,
            &FetchConfig::scaled(E::Base, code),
        ),
        compressed: simulate(
            &p.program,
            &p.compressed_img,
            &p.trace,
            &FetchConfig::scaled(E::Compressed, code),
        ),
        tailored: simulate(
            &p.program,
            &p.tailored_img,
            &p.trace,
            &FetchConfig::scaled(E::Tailored, code),
        ),
    }
}

/// Renders a fixed-width text table: a header row and data rows.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>width$}", width = w + 2))
            .collect::<String>()
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().map(|w| w + 2).sum()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Geometric mean of a nonempty, positive series.
pub fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.max(1e-300).ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// Arithmetic mean.
pub fn mean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    vals.iter().sum::<f64>() / vals.len() as f64
}

/// Median (averaging the middle pair for even lengths).
pub fn median(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    let mut v = vals.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renderer_aligns() {
        let t = render_table(
            &["name", "x"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("longer"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn stats_helpers() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert!((median(&[3.0, 1.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((median(&[4.0, 1.0, 2.0, 3.0]) - 2.5).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }
}
