//! Table 1 — the cycle-count assumptions of the cache study (a model
//! *input*; printed for the record).

fn main() {
    print!("{}", ccc_bench::figures::table1());
}
