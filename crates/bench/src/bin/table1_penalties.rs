//! Table 1 — the cycle-count assumptions of the cache study (a model
//! *input*; printed for the record).

fn main() {
    let t0 = std::time::Instant::now();
    print!("{}", ccc_bench::figures::table1());
    ccc_bench::history::append_best_effort(&ccc_bench::history::base_record(
        "table1_penalties",
        0,
        ccc_bench::history::build_features(),
        0,
        t0.elapsed().as_nanos() as u64,
    ));
}
