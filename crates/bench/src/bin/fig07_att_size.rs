//! Figure 7 — "ATB Characteristics. Total code size": code segment plus
//! the compressed Address Translation Table for each scheme, and the
//! dynamic ATB hit rates showing the buffer's low contention.

use ccc_bench::engine::Engine;

fn main() {
    let t0 = std::time::Instant::now();
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let reports = engine.reports(&prepared);
    print!("{}", ccc_bench::figures::fig07(&reports, &prepared));
    ccc_bench::history::append_best_effort(&ccc_bench::history::engine_record(
        "fig07_att_size",
        0,
        ccc_bench::history::build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    ));
}
