//! Figure 7 — "ATB Characteristics. Total code size": code segment plus
//! the compressed Address Translation Table for each scheme, and the
//! dynamic ATB hit rates showing the buffer's low contention.

use ccc_bench::{cache_study, mean, prepare_all, render_table};
use ccc_core::CompressionReport;

fn main() {
    let schemes = ["byte", "stream", "stream_1", "full", "tailored"];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    let mut att_fracs: Vec<f64> = Vec::new();
    for w in &tinker_workloads::ALL {
        let program = w.compile().expect("workload compiles");
        let rep = CompressionReport::build(w.name, &program);
        let mut row = vec![w.name.to_string()];
        for (i, s) in schemes.iter().enumerate() {
            let r = rep.row(s).expect("scheme present");
            per_scheme[i].push(r.total_ratio);
            att_fracs.push(r.att_bytes as f64 / r.code_bytes as f64);
            row.push(format!("{:.1}%", r.total_ratio * 100.0));
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for vals in &per_scheme {
        avg.push(format!("{:.1}%", mean(vals) * 100.0));
    }
    rows.push(avg);

    println!(
        "Figure 7. ATB characteristics / total code size (code + compressed ATT, % of original).\n"
    );
    let headers: Vec<&str> = std::iter::once("benchmark").chain(schemes).collect();
    print!("{}", render_table(&headers, &rows));
    println!(
        "\nMeasured ATT overhead: {:.1}% of the compressed code segment (paper: ≈15.5%).",
        mean(&att_fracs) * 100.0
    );

    // Dynamic side: ATB hit rates under the cache study configuration.
    // (The ATB sees only the block trace, so every translated encoding
    // shares the same hit rate.)
    println!("\nATB hit rates (64-entry, fully associative, LRU):");
    let mut rows2 = Vec::new();
    for p in prepare_all() {
        let s = cache_study(&p);
        rows2.push(vec![
            p.workload.name.to_string(),
            format!("{:.2}%", s.tailored.atb_hit_rate() * 100.0),
        ]);
    }
    print!("{}", render_table(&["benchmark", "ATB hit"], &rows2));
}
