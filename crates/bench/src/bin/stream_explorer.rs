//! The six stream configurations (paper Figure 3 / §2.2): code size and
//! decoder complexity of every configuration on every workload, making
//! the paper's stream/stream_1 selection reproducible.

use ccc_bench::engine::Engine;

fn main() {
    let prepared = Engine::from_env().prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::stream_explorer(&prepared));
}
