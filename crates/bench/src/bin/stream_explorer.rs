//! The six stream configurations (paper Figure 3 / §2.2): code size and
//! decoder complexity of every configuration on every workload, making
//! the paper's stream/stream_1 selection reproducible.

use ccc_bench::engine::Engine;

fn main() {
    let t0 = std::time::Instant::now();
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::stream_explorer(&prepared));
    ccc_bench::history::append_best_effort(&ccc_bench::history::engine_record(
        "stream_explorer",
        0,
        ccc_bench::history::build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    ));
}
