//! The six stream configurations (paper Figure 3 / §2.2: "six stream
//! configurations were considered... selected for the smallest code size
//! (stream_1) and for the smallest decoder (stream)"): code size and
//! decoder complexity of every configuration on every workload, making
//! the selection reproducible.

use ccc_bench::{mean, render_table};
use ccc_core::schemes::stream::{StreamConfig, StreamScheme};
use ccc_core::schemes::Scheme;

fn main() {
    println!("Stream configuration explorer (paper Figure 3 / §2.2).\n");
    println!("Configurations (bit cut points over the 40-bit op):");
    for c in &StreamConfig::ALL {
        let widths: Vec<String> = (0..c.num_streams())
            .map(|i| c.stream_bits(i).1.to_string())
            .collect();
        println!(
            "  {:<9} cuts {:?} → stream widths [{}]",
            c.name,
            c.cuts,
            widths.join(", ")
        );
    }
    println!();

    let mut rows = Vec::new();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); StreamConfig::ALL.len()];
    let mut decoders: Vec<Vec<f64>> = vec![Vec::new(); StreamConfig::ALL.len()];
    for w in &tinker_workloads::ALL {
        let p = w.compile().expect("compiles");
        let mut row = vec![w.name.to_string()];
        for (i, c) in StreamConfig::ALL.iter().enumerate() {
            let out = StreamScheme::with_config(c)
                .compress(&p)
                .expect("compresses");
            assert!(out.verify_roundtrip(&p), "{}/{}", w.name, c.name);
            let r = out.image.ratio(p.code_size());
            ratios[i].push(r);
            decoders[i].push(out.image.decoder.transistors() as f64);
            row.push(format!("{:.1}%", r * 100.0));
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for v in &ratios {
        avg.push(format!("{:.1}%", mean(v) * 100.0));
    }
    rows.push(avg);
    let mut dec = vec!["decoder T".to_string()];
    for v in &decoders {
        dec.push(format!("{:.0}", mean(v)));
    }
    rows.push(dec);

    let headers: Vec<&str> = std::iter::once("benchmark")
        .chain(StreamConfig::ALL.iter().map(|c| c.name))
        .collect();
    print!("{}", render_table(&headers, &rows));

    // Confirm the paper's two selections hold on this corpus.
    let avg_ratio: Vec<f64> = ratios.iter().map(|v| mean(v)).collect();
    let avg_dec: Vec<f64> = decoders.iter().map(|v| mean(v)).collect();
    let best_code = (0..avg_ratio.len()).min_by(|&a, &b| avg_ratio[a].total_cmp(&avg_ratio[b]));
    let best_dec = (0..avg_dec.len()).min_by(|&a, &b| avg_dec[a].total_cmp(&avg_dec[b]));
    println!(
        "\nSmallest code : {} ({:.1}%)",
        StreamConfig::ALL[best_code.unwrap()].name,
        avg_ratio[best_code.unwrap()] * 100.0
    );
    println!(
        "Smallest decoder: {} ({:.0} transistors)",
        StreamConfig::ALL[best_dec.unwrap()].name,
        avg_dec[best_dec.unwrap()]
    );
}
