//! Table 2 — the baseline TEPIC ISA operation formats (a model *input*;
//! printed for the record).

fn main() {
    print!("{}", tepic_isa::format::render_table2());
}
