//! Table 2 — the baseline TEPIC ISA operation formats (a model *input*;
//! printed for the record).

fn main() {
    let t0 = std::time::Instant::now();
    print!("{}", ccc_bench::figures::table2());
    ccc_bench::history::append_best_effort(&ccc_bench::history::base_record(
        "table2_formats",
        0,
        ccc_bench::history::build_features(),
        0,
        t0.elapsed().as_nanos() as u64,
    ));
}
