//! Table 2 — the baseline TEPIC ISA operation formats (a model *input*;
//! printed for the record).

fn main() {
    print!("{}", ccc_bench::figures::table2());
}
