//! Extension experiment (paper §7 future work): complex blocks as fetch
//! units. Profile-formed chains of fall-through blocks become the unit
//! of translation, prediction and atomic placement; this measures the
//! IPC and bus-traffic consequences against per-block fetch.

use ccc_bench::{mean, prepare_all, render_table};
use ifetch_sim::{simulate, simulate_with_units, EncodingClass, FetchConfig, FetchUnits};

fn main() {
    let prepared = prepare_all();
    let mut rows = Vec::new();
    let mut tail_gain = Vec::new();
    for p in &prepared {
        let code = p.base_img.total_bytes();
        let units = FetchUnits::form(&p.program, &p.trace, 0.8);
        let cfg_t = FetchConfig::scaled(EncodingClass::Tailored, code);
        let cfg_b = FetchConfig::scaled(EncodingClass::Base, code);
        let tb = simulate(&p.program, &p.tailored_img, &p.trace, &cfg_t);
        let tu = simulate_with_units(&p.program, &p.tailored_img, &p.trace, &cfg_t, &units);
        let bb = simulate(&p.program, &p.base_img, &p.trace, &cfg_b);
        let bu = simulate_with_units(&p.program, &p.base_img, &p.trace, &cfg_b, &units);
        tail_gain.push(tu.ipc() / tb.ipc() - 1.0);
        rows.push(vec![
            p.workload.name.to_string(),
            format!("{:.2}", units.avg_len()),
            format!("{:.3}", bb.ipc()),
            format!("{:.3}", bu.ipc()),
            format!("{:.3}", tb.ipc()),
            format!("{:.3}", tu.ipc()),
            format!("{:.2}x", tu.bus_beats as f64 / tb.bus_beats.max(1) as f64),
            format!(
                "{:.0}%",
                100.0 * (tb.pred_correct + tb.pred_wrong) as f64
                    / (tu.pred_correct + tu.pred_wrong).max(1) as f64
            ),
        ]);
    }
    println!("Extension: complex fetch units (profile-formed, θ = 0.8) vs basic blocks.\n");
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "blk/unit",
                "base blk",
                "base unit",
                "tail blk",
                "tail unit",
                "unit bus",
                "pred pts"
            ],
            &rows
        )
    );
    println!(
        "\nMean tailored IPC effect of complex units: {:+.2}%.",
        mean(&tail_gain) * 100.0
    );
    println!("Longer units remove per-block prediction points but over-fetch on early");
    println!("exits — the tension the paper flags for its future complex-block study.");
    println!("('pred pts' = block-granularity prediction points as % of unit-granularity.)");
}
