//! Extension experiment (paper §7 future work): complex blocks as fetch
//! units. Profile-formed chains of fall-through blocks become the unit
//! of translation, prediction and atomic placement; this measures the
//! IPC and bus-traffic consequences against per-block fetch.

use ccc_bench::engine::Engine;

fn main() {
    let t0 = std::time::Instant::now();
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::ext_complex_units(&prepared));
    ccc_bench::history::append_best_effort(&ccc_bench::history::engine_record(
        "ext_complex_units",
        0,
        ccc_bench::history::build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    ));
}
