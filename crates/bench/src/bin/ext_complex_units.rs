//! Extension experiment (paper §7 future work): complex blocks as fetch
//! units. Profile-formed chains of fall-through blocks become the unit
//! of translation, prediction and atomic placement; this measures the
//! IPC and bus-traffic consequences against per-block fetch.

use ccc_bench::engine::Engine;

fn main() {
    let prepared = Engine::from_env().prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::ext_complex_units(&prepared));
}
