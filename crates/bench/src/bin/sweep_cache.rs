//! Diagnostic sweep: Base-encoding ICache hit rate vs capacity, per
//! workload. Used to choose the scaled cache sizes that preserve the
//! paper's code-size : cache-size pressure (their SPEC binaries dwarf a
//! 16KB cache; our workloads are smaller, so the cache scales down with
//! them). Also the substrate for the ablation study over cache size.

use ccc_bench::{prepare_all, render_table};
use ifetch_sim::{simulate, FetchConfig};

fn main() {
    let caps: Vec<usize> = vec![256, 512, 1024, 2048, 4096, 8192, 16384];
    let prepared = prepare_all();
    let mut rows = Vec::new();
    for p in &prepared {
        let mut row = vec![
            p.workload.name.to_string(),
            format!("{}", p.base_img.total_bytes()),
        ];
        for &cap in &caps {
            let mut cfg = FetchConfig::base();
            cfg.cache.capacity = cap;
            let r = simulate(&p.program, &p.base_img, &p.trace, &cfg);
            row.push(format!("{:.1}", r.cache_hit_rate() * 100.0));
        }
        rows.push(row);
    }
    let headers: Vec<String> = ["benchmark".to_string(), "code B".to_string()]
        .into_iter()
        .chain(caps.iter().map(|c| format!("{c}B")))
        .collect();
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!("Base-encoding ICache hit rate (%) vs capacity (2-way, 30B lines):\n");
    print!("{}", render_table(&hdr_refs, &rows));
}
