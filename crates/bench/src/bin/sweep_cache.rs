//! Diagnostic sweep: Base-encoding ICache hit rate vs capacity, per
//! workload. Used to choose the scaled cache sizes that preserve the
//! paper's code-size : cache-size pressure.

use ccc_bench::engine::Engine;

fn main() {
    let t0 = std::time::Instant::now();
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::sweep_cache(&prepared));
    ccc_bench::history::append_best_effort(&ccc_bench::history::engine_record(
        "sweep_cache",
        0,
        ccc_bench::history::build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    ));
}
