//! Diagnostic sweep: Base-encoding ICache hit rate vs capacity, per
//! workload. Used to choose the scaled cache sizes that preserve the
//! paper's code-size : cache-size pressure.

use ccc_bench::engine::Engine;

fn main() {
    let prepared = Engine::from_env().prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::sweep_cache(&prepared));
}
