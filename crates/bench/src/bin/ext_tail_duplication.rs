//! Extension experiment for the paper's §1 remark that VLIW code
//! duplication must be "restricted to RISC-like levels": what does tail
//! duplication actually trade on this system?

use ccc_bench::engine::Engine;

fn main() {
    let t0 = std::time::Instant::now();
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::ext_tail_duplication(&prepared));
    ccc_bench::history::append_best_effort(&ccc_bench::history::engine_record(
        "ext_tail_duplication",
        0,
        ccc_bench::history::build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    ));
}
