//! Extension experiment for the paper's §1 remark that VLIW code
//! duplication must be "restricted to RISC-like levels": what does tail
//! duplication actually trade on this system?

use ccc_bench::engine::Engine;

fn main() {
    let prepared = Engine::from_env().prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::ext_tail_duplication(&prepared));
}
