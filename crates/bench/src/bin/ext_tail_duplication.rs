//! Extension experiment for the paper's §1 remark that VLIW code
//! duplication must be "restricted to RISC-like levels": what does tail
//! duplication actually trade on this system? Duplicating small join
//! blocks enlarges the atomic fetch unit (fewer block boundaries, fewer
//! predictions) but grows the ROM — the exact currency of this paper.

use ccc_bench::{mean, render_table};
use ccc_core::schemes::base::encode_base;
use ifetch_sim::{simulate, EncodingClass, FetchConfig};
use yula::{Emulator, Limits};

fn main() {
    let mut rows = Vec::new();
    let mut size_growth = Vec::new();
    let mut ipc_change = Vec::new();
    for w in &tinker_workloads::ALL {
        let plain = lego::compile(w.source(), &lego::Options::default()).expect("compiles");
        let duped = lego::compile(
            w.source(),
            &lego::Options {
                tail_duplicate: Some(6),
                ..lego::Options::default()
            },
        )
        .expect("compiles with tail duplication");

        let run_plain = Emulator::new(&plain).run(&Limits::default()).expect("runs");
        let run_duped = Emulator::new(&duped).run(&Limits::default()).expect("runs");
        assert_eq!(
            run_plain.output, run_duped.output,
            "{}: behaviour changed!",
            w.name
        );

        // Fetch both in their own address spaces, at equal cache pressure
        // relative to the *plain* image (duplication must pay for its own
        // extra bytes).
        let img_p = encode_base(&plain);
        let img_d = encode_base(&duped);
        let code = img_p.total_bytes();
        let cfg = FetchConfig::scaled(EncodingClass::Base, code);
        let rp = simulate(&plain, &img_p, &run_plain.trace, &cfg);
        let rd = simulate(&duped, &img_d, &run_duped.trace, &cfg);

        size_growth.push(duped.code_size() as f64 / plain.code_size() as f64);
        ipc_change.push(rd.ipc() / rp.ipc() - 1.0);
        rows.push(vec![
            w.name.to_string(),
            plain.code_size().to_string(),
            format!(
                "{:+.1}%",
                (duped.code_size() as f64 / plain.code_size() as f64 - 1.0) * 100.0
            ),
            format!(
                "{:.2}",
                run_plain.stats.ops as f64 / run_plain.stats.blocks as f64
            ),
            format!(
                "{:.2}",
                run_duped.stats.ops as f64 / run_duped.stats.blocks as f64
            ),
            format!("{:.3}", rp.ipc()),
            format!("{:.3}", rd.ipc()),
            format!("{:.1}%", rp.pred_accuracy() * 100.0),
            format!("{:.1}%", rd.pred_accuracy() * 100.0),
        ]);
    }
    println!("Extension: tail duplication (join blocks ≤ 6 insts cloned into jump preds).\n");
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "code B",
                "Δsize",
                "ops/blk",
                "dup ops/blk",
                "base IPC",
                "dup IPC",
                "pred",
                "dup pred"
            ],
            &rows
        )
    );
    println!(
        "\nMean: code size {:+.1}%, IPC {:+.2}%.",
        (mean(&size_growth) - 1.0) * 100.0,
        mean(&ipc_change) * 100.0
    );
    println!("The paper's stance — keep duplication at RISC-like levels — is the judgment");
    println!("call this table informs: block enlargement vs the ROM bytes it costs.");
}
