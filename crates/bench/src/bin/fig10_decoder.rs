//! Figure 10 — "Huffman Decoder Complexity": the worst-case transistor
//! estimate of each scheme's decode hardware (the paper's mux-tree model
//! for Huffman schemes; the PLA model for the tailored ISA).

use ccc_bench::engine::Engine;

fn main() {
    let t0 = std::time::Instant::now();
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let reports = engine.reports(&prepared);
    print!("{}", ccc_bench::figures::fig10(&reports));
    ccc_bench::history::append_best_effort(&ccc_bench::history::engine_record(
        "fig10_decoder",
        0,
        ccc_bench::history::build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    ));
}
