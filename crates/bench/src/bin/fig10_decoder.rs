//! Figure 10 — "Huffman Decoder Complexity": the worst-case transistor
//! estimate of each scheme's decode hardware (the paper's mux-tree model
//! for Huffman schemes; the PLA model for the tailored ISA).

use ccc_bench::{geomean, render_table};
use ccc_core::CompressionReport;

fn main() {
    let schemes = ["byte", "stream", "stream_1", "full", "tailored"];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for w in &tinker_workloads::ALL {
        let program = w.compile().expect("workload compiles");
        let rep = CompressionReport::build(w.name, &program);
        let mut row = vec![w.name.to_string()];
        for (i, s) in schemes.iter().enumerate() {
            let r = rep.row(s).expect("scheme present");
            per_scheme[i].push(r.decoder_transistors as f64);
            row.push(group_digits(r.decoder_transistors));
        }
        rows.push(row);
    }
    let mut gm = vec!["geomean".to_string()];
    for vals in &per_scheme {
        gm.push(group_digits(geomean(vals) as u128));
    }
    rows.push(gm);

    println!("Figure 10. Decoder complexity (modelled transistors).");
    println!("Huffman schemes: T = 2m(2^n-1) + 4m(2^n-2^(n-1)-1) + 2n per table;");
    println!("tailored: two-plane PLA over the dense (OPT,OPCODE) selector.\n");
    let headers: Vec<&str> = std::iter::once("benchmark").chain(schemes).collect();
    print!("{}", render_table(&headers, &rows));
    println!("\nPaper shape: Full largest by far; byte smallest of the Huffman family;");
    println!("the stream family sits between; the tailored PLA is nearly free.");
}

fn group_digits(v: u128) -> String {
    let s = v.to_string();
    let bytes: Vec<u8> = s.bytes().rev().collect();
    let mut out = Vec::new();
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(b'_');
        }
        out.push(*b);
    }
    out.reverse();
    String::from_utf8(out).expect("digits")
}
