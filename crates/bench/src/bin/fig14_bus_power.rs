//! Figure 14 — "Memory Bus Bit flips Summary": switching activity on the
//! 64-bit code-memory bus for Base / Compressed / Tailored (the power
//! proxy; each miss moves encoded lines across the bus).

use ccc_bench::engine::Engine;

fn main() {
    let prepared = Engine::from_env().prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::fig14(&prepared));
}
