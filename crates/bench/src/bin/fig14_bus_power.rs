//! Figure 14 — "Memory Bus Bit flips Summary": switching activity on the
//! 64-bit code-memory bus for Base / Compressed / Tailored (the power
//! proxy; each miss moves encoded lines across the bus).

use ccc_bench::engine::Engine;

fn main() {
    let t0 = std::time::Instant::now();
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::fig14(&prepared));
    ccc_bench::history::append_best_effort(&ccc_bench::history::engine_record(
        "fig14_bus_power",
        0,
        ccc_bench::history::build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    ));
}
