//! Figure 14 — "Memory Bus Bit flips Summary": switching activity on the
//! 64-bit code-memory bus for Base / Compressed / Tailored (the power
//! proxy; each miss moves encoded lines across the bus).

use ccc_bench::{cache_study_scaled, mean, prepare_all, render_table};

fn main() {
    let prepared = prepare_all();
    let mut rows = Vec::new();
    let mut rel_tail = Vec::new();
    let mut rel_comp = Vec::new();
    for p in &prepared {
        let s = cache_study_scaled(p);
        let b = s.base.bus_bit_flips.max(1) as f64;
        rel_tail.push(s.tailored.bus_bit_flips as f64 / b);
        rel_comp.push(s.compressed.bus_bit_flips as f64 / b);
        rows.push(vec![
            p.workload.name.to_string(),
            s.base.bus_bit_flips.to_string(),
            s.compressed.bus_bit_flips.to_string(),
            s.tailored.bus_bit_flips.to_string(),
            format!("{:.2}", s.compressed.bus_bit_flips as f64 / b),
            format!("{:.2}", s.tailored.bus_bit_flips as f64 / b),
            s.base.bus_beats.to_string(),
            s.compressed.bus_beats.to_string(),
            s.tailored.bus_beats.to_string(),
        ]);
    }
    println!("Figure 14. Memory bus bit flips summary (and bus beats).\n");
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "base flips",
                "comp flips",
                "tail flips",
                "comp/base",
                "tail/base",
                "base beats",
                "comp beats",
                "tail beats"
            ],
            &rows
        )
    );
    println!(
        "\nAverage relative activity: compressed {:.2}x, tailored {:.2}x of base.",
        mean(&rel_comp),
        mean(&rel_tail)
    );
    println!("(In the Figure-13 configuration the compressed image fits its cache almost");
    println!(" entirely, so its bus traffic collapses to cold misses.)");

    // Second view: a tight cache (8% of the base image) where every
    // encoding misses — here the savings visibly track the degree of
    // compression, the paper's Figure-14 shape.
    println!("\nTight-cache view (capacity = 8% of the base image for every encoding):\n");
    let mut rows2 = Vec::new();
    let mut r2_tail = Vec::new();
    let mut r2_comp = Vec::new();
    for p in &prepared {
        let cap = (p.base_img.total_bytes() / 12).max(240);
        let mk = |mut cfg: ifetch_sim::FetchConfig| {
            cfg.cache.capacity = cap;
            cfg
        };
        let base = ifetch_sim::simulate(
            &p.program,
            &p.base_img,
            &p.trace,
            &mk(ifetch_sim::FetchConfig::base()),
        );
        let comp = ifetch_sim::simulate(
            &p.program,
            &p.compressed_img,
            &p.trace,
            &mk(ifetch_sim::FetchConfig::compressed()),
        );
        let tail = ifetch_sim::simulate(
            &p.program,
            &p.tailored_img,
            &p.trace,
            &mk(ifetch_sim::FetchConfig::tailored()),
        );
        let b = base.bus_bit_flips.max(1) as f64;
        r2_comp.push(comp.bus_bit_flips as f64 / b);
        r2_tail.push(tail.bus_bit_flips as f64 / b);
        rows2.push(vec![
            p.workload.name.to_string(),
            base.bus_bit_flips.to_string(),
            comp.bus_bit_flips.to_string(),
            tail.bus_bit_flips.to_string(),
            format!("{:.2}", comp.bus_bit_flips as f64 / b),
            format!("{:.2}", tail.bus_bit_flips as f64 / b),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "base flips",
                "comp flips",
                "tail flips",
                "comp/base",
                "tail/base"
            ],
            &rows2
        )
    );
    println!(
        "\nTight-cache average: compressed {:.2}x, tailored {:.2}x of base — tracking the",
        mean(&r2_comp),
        mean(&r2_tail)
    );
    println!(
        "compression ratios ({:.2} and {:.2} respectively).",
        0.20, 0.57
    );
    println!("Paper shape: savings track the degree of compression — each scheme brings in");
    println!("more instructions per bit flipped.");
}
