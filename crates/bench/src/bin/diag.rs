//! Workload inventory: static/dynamic sizes, trace shape and operation
//! mix for every benchmark (sanity data behind the figure experiments).

use ccc_bench::engine::Engine;

fn main() {
    let prepared = Engine::from_env().prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::diag(&prepared));
}
