//! Workload inventory: static/dynamic sizes, trace shape and operation
//! mix for every benchmark (sanity data behind the figure experiments).

use yula::{OpCategory, OpMix};

fn main() {
    println!(
        "{:<10} {:>7} {:>6} {:>10} {:>9} {:>8} {:>6}",
        "workload", "st.ops", "blocks", "dyn.ops", "dyn.blks", "density", "taken"
    );
    for w in &tinker_workloads::ALL {
        let (p, r) = w.compile_and_run().unwrap();
        println!(
            "{:<10} {:>7} {:>6} {:>10} {:>9} {:>8.2} {:>6.2}",
            w.name,
            p.num_ops(),
            p.num_blocks(),
            r.stats.ops,
            r.stats.blocks,
            r.stats.avg_mop_density(),
            r.stats.taken_fraction
        );
    }

    println!("\nDynamic operation mix (% of executed ops):");
    print!("{:<10}", "workload");
    for c in OpCategory::ALL {
        print!("{:>8}", c.label());
    }
    println!();
    for w in &tinker_workloads::ALL {
        let (p, r) = w.compile_and_run().unwrap();
        let mix = OpMix::dynamic_mix(&p, &r.trace);
        print!("{:<10}", w.name);
        for c in OpCategory::ALL {
            print!("{:>7.1}%", mix.fraction(c) * 100.0);
        }
        println!();
    }
}
