//! Ablation studies over the microarchitectural design choices:
//!
//! 1. L0 buffer capacity (paper §4 fixes 32 ops — what does the choice
//!    cost?);
//! 2. the Huffman length bound of the byte scheme (code size vs decoder
//!    size — the bounded-Huffman escape of §2.2);
//! 3. ATB capacity (the §3.3 "low contention" claim under pressure);
//! 4. cache associativity.
//!
//! Each table averages over all eight workloads.

use ccc_bench::engine::Engine;

fn main() {
    let t0 = std::time::Instant::now();
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::ablations(&prepared));
    ccc_bench::history::append_best_effort(&ccc_bench::history::engine_record(
        "ablations",
        0,
        ccc_bench::history::build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    ));
}
