//! Ablation studies over the microarchitectural design choices:
//!
//! 1. L0 buffer capacity (paper §4 fixes 32 ops — what does the choice
//!    cost?);
//! 2. the Huffman length bound of the byte scheme (code size vs decoder
//!    size — the bounded-Huffman escape of §2.2);
//! 3. ATB capacity (the §3.3 "low contention" claim under pressure);
//! 4. cache associativity.
//!
//! Each table averages over all eight workloads.

use ccc_bench::engine::Engine;

fn main() {
    let prepared = Engine::from_env().prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::ablations(&prepared));
}
