//! Ablation studies over the microarchitectural design choices:
//!
//! 1. L0 buffer capacity (paper §4 fixes 32 ops — what does the choice
//!    cost?);
//! 2. the Huffman length bound of the byte scheme (code size vs decoder
//!    size — the bounded-Huffman escape of §2.2);
//! 3. ATB capacity (the §3.3 "low contention" claim under pressure);
//! 4. cache associativity.
//!
//! Each table averages over all eight workloads.

use ccc_bench::{mean, prepare_all, render_table};
use ccc_core::schemes::Scheme;
use ifetch_sim::{simulate, EncodingClass, FetchConfig};

fn main() {
    let prepared = prepare_all();

    // --- 1. L0 buffer capacity (compressed encoding) -------------------
    println!("Ablation 1: L0 decompression-buffer capacity (compressed encoding, scaled caches)\n");
    let mut rows = Vec::new();
    for l0 in [0u32, 8, 16, 32, 64, 128] {
        let mut ipcs = Vec::new();
        let mut hit = Vec::new();
        for p in &prepared {
            let mut cfg = FetchConfig::scaled(EncodingClass::Compressed, p.base_img.total_bytes());
            cfg.l0_ops = l0.max(1);
            if l0 == 0 {
                // Capacity 1 op: effectively no buffer.
                cfg.l0_ops = 1;
            }
            let r = simulate(&p.program, &p.compressed_img, &p.trace, &cfg);
            ipcs.push(r.ipc());
            let t = r.buffer_hits + r.buffer_misses;
            hit.push(if t == 0 {
                0.0
            } else {
                r.buffer_hits as f64 / t as f64
            });
        }
        rows.push(vec![
            if l0 == 0 {
                "none".to_string()
            } else {
                format!("{l0} ops")
            },
            format!("{:.3}", mean(&ipcs)),
            format!("{:.1}%", mean(&hit) * 100.0),
        ]);
    }
    print!(
        "{}",
        render_table(&["L0 size", "mean IPC", "L0 hit rate"], &rows)
    );
    println!("(The paper fixes 32 ops: \"tight, frequently executed loops fit completely\".)\n");

    // --- 2. Huffman length bound (byte scheme, where it binds) ----------
    println!("Ablation 2: Huffman length bound — byte scheme (code size vs decoder size)\n");
    let mut rows = Vec::new();
    for bound in [8u8, 9, 10, 12, 14, 16] {
        let mut ratio = Vec::new();
        let mut decoder = Vec::new();
        let mut ok = true;
        for p in &prepared {
            match (ccc_core::schemes::byte::ByteScheme {
                max_code_len: bound,
            })
            .compress(&p.program)
            {
                Ok(out) => {
                    ratio.push(out.image.ratio(p.program.code_size()));
                    decoder.push(out.image.decoder.transistors() as f64);
                }
                Err(_) => ok = false,
            }
        }
        if !ok {
            rows.push(vec![
                format!("{bound}"),
                "bound too tight".into(),
                String::new(),
            ]);
            continue;
        }
        rows.push(vec![
            format!("{bound}"),
            format!("{:.2}%", mean(&ratio) * 100.0),
            format!("{:.0}", mean(&decoder)),
        ]);
    }
    print!(
        "{}",
        render_table(&["max code bits", "mean code %", "mean decoder T"], &rows)
    );
    println!("(Tighter bounds barely cost code size but shrink the worst-case tree — the");
    println!(" §2.2 bounded-Huffman rationale. The Full scheme's natural max length sits");
    println!(" below every practical bound at this dictionary scale, so the bound only");
    println!(" binds for the byte alphabet.)\n");

    // --- 3. ATB capacity ------------------------------------------------
    println!("Ablation 3: ATB capacity (tailored encoding, scaled caches)\n");
    let mut rows = Vec::new();
    for entries in [2usize, 4, 8, 16, 32, 64, 128] {
        let mut ipcs = Vec::new();
        let mut hits = Vec::new();
        for p in &prepared {
            let mut cfg = FetchConfig::scaled(EncodingClass::Tailored, p.base_img.total_bytes());
            cfg.atb_entries = entries;
            let r = simulate(&p.program, &p.tailored_img, &p.trace, &cfg);
            ipcs.push(r.ipc());
            hits.push(r.atb_hit_rate());
        }
        rows.push(vec![
            format!("{entries}"),
            format!("{:.3}", mean(&ipcs)),
            format!("{:.1}%", mean(&hits) * 100.0),
        ]);
    }
    print!(
        "{}",
        render_table(&["ATB entries", "mean IPC", "ATB hit rate"], &rows)
    );
    println!("(Past a few dozen entries the ATB stops mattering — §3.3's low contention.)\n");

    // --- 4. Cache associativity -----------------------------------------
    println!("Ablation 4: ICache associativity (base encoding, scaled capacity)\n");
    let mut rows = Vec::new();
    for ways in [1usize, 2, 4, 8] {
        let mut ipcs = Vec::new();
        let mut hits = Vec::new();
        for p in &prepared {
            let mut cfg = FetchConfig::scaled(EncodingClass::Base, p.base_img.total_bytes());
            cfg.cache.ways = ways;
            let r = simulate(&p.program, &p.base_img, &p.trace, &cfg);
            ipcs.push(r.ipc());
            hits.push(r.cache_hit_rate());
        }
        rows.push(vec![
            format!("{ways}-way"),
            format!("{:.3}", mean(&ipcs)),
            format!("{:.1}%", mean(&hits) * 100.0),
        ]);
    }
    print!(
        "{}",
        render_table(&["assoc", "mean IPC", "I$ hit rate"], &rows)
    );
    println!("(The paper's 2-way choice sits at the knee.)");
}
