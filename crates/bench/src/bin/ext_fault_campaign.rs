//! Extension experiment: fault injection on the compressed ROM image.
//!
//! The paper targets embedded ROMs but never asks what a bit error does
//! to a compressed instruction stream. This campaign injects faults
//! (bit flips, stuck-at, 2–8-bit bursts) into the payload, the decode
//! dictionaries and the ATT entries of every scheme, and classifies each
//! as detected (integrity check or decode error), contained (wrong
//! decode confined to the faulted block), SDC (silent corruption beyond
//! it) or masked. Deterministic: same seed, same table.

use ccc_core::fault::{run_campaign, CampaignConfig, Tally};
use std::collections::BTreeMap;

fn main() {
    let cfg = CampaignConfig {
        seed: 42,
        faults_per_target: 100,
    };
    // scheme -> (payload, payload_raw, dict, att, amp sums)
    let mut agg: BTreeMap<String, (Tally, Tally, Tally, Tally, f64)> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut workloads = 0u32;
    for w in &tinker_workloads::ALL {
        let p = w.compile().expect("compiles");
        let rep = run_campaign(&p, &cfg);
        workloads += 1;
        for row in &rep.rows {
            if !order.contains(&row.scheme) {
                order.push(row.scheme.clone());
            }
            let e = agg.entry(row.scheme.clone()).or_default();
            for (sum, part) in [
                (&mut e.0, row.payload),
                (&mut e.1, row.payload_raw),
                (&mut e.2, row.dictionary),
                (&mut e.3, row.att),
            ] {
                sum.detected += part.detected;
                sum.contained += part.contained;
                sum.sdc += part.sdc;
                sum.masked += part.masked;
            }
            e.4 += row.raw_amplification;
        }
    }

    println!(
        "Extension: fault-injection campaign, {} faults per scheme per target per\n\
         workload, {} workloads, seed {}. Fault mix: 1/2 bit-flips, 1/4 stuck-at,\n\
         1/4 bursts (2-8 bits).\n",
        cfg.faults_per_target, workloads, cfg.seed
    );
    println!("Payload faults, integrity checks ON (per-block parity + typed decode errors):\n");
    println!(
        "{:<10} {:>9} {:>9} {:>5} {:>8}",
        "scheme", "detected", "contained", "sdc", "masked"
    );
    for s in &order {
        let e = &agg[s];
        println!(
            "{s:<10} {:>9} {:>9} {:>5} {:>8}",
            e.0.detected, e.0.contained, e.0.sdc, e.0.masked
        );
    }
    println!(
        "\nPayload faults, RAW decoder only (no parity) - each encoding's intrinsic\n\
         error response; 'amp' is mean corrupted ops per undetected fault:\n"
    );
    println!(
        "{:<10} {:>9} {:>9} {:>5} {:>8} {:>7}",
        "scheme", "detected", "contained", "sdc", "masked", "amp"
    );
    for s in &order {
        let e = &agg[s];
        println!(
            "{s:<10} {:>9} {:>9} {:>5} {:>8} {:>7.2}",
            e.1.detected,
            e.1.contained,
            e.1.sdc,
            e.1.masked,
            e.4 / workloads as f64
        );
    }
    println!(
        "\nDictionary faults (CRC32 over decode tables) and ATT entry faults\n\
         (CRC-8 self-check):\n"
    );
    println!(
        "{:<10} {:>9} {:>5} {:>8}   {:>9} {:>5} {:>8}",
        "scheme", "dict det", "sdc", "masked", "att det", "sdc", "masked"
    );
    for s in &order {
        let e = &agg[s];
        println!(
            "{s:<10} {:>9} {:>5} {:>8}   {:>9} {:>5} {:>8}",
            e.2.detected, e.2.sdc, e.2.masked, e.3.detected, e.3.sdc, e.3.masked
        );
    }
    let protected_sdc: u64 = agg.values().map(|e| e.0.sdc + e.2.sdc + e.3.sdc).sum();
    println!("\nSDC in protected regions (payload+parity, dictionaries, ATT): {protected_sdc}.");
    println!(
        "Huffman streams amplify undetected errors (a wrong code length cascades to\n\
         the block end) where the tailored encoding's fixed-width fields corrupt only\n\
         the struck op - but block-atomic fetch contains both, and the parity/CRC\n\
         layer catches what the decoder cannot."
    );
}
