//! Extension experiment: fault injection on the compressed ROM image.
//!
//! Injects faults (bit flips, stuck-at, 2–8-bit bursts) into the
//! payload, the decode dictionaries and the ATT entries of every scheme,
//! classifying each as detected, contained, SDC or masked.
//! Deterministic: same seed, same table.

use ccc_bench::engine::Engine;
use ccc_core::fault::CampaignConfig;

fn main() {
    let prepared = Engine::from_env().prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let cfg = CampaignConfig {
        seed: 42,
        faults_per_target: 100,
    };
    print!(
        "{}",
        ccc_bench::figures::ext_fault_campaign(&prepared, &cfg)
    );
}
