//! Extension experiment: fault injection on the compressed ROM image.
//!
//! Injects faults (bit flips, stuck-at, 2–8-bit bursts) into the
//! payload, the decode dictionaries and the ATT entries of every scheme,
//! classifying each as detected, contained, SDC or masked.
//! Deterministic: same seed, same table.

use ccc_bench::engine::Engine;
use ccc_core::fault::CampaignConfig;

fn main() {
    let t0 = std::time::Instant::now();
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let cfg = CampaignConfig {
        seed: 42,
        faults_per_target: 100,
    };
    print!(
        "{}",
        ccc_bench::figures::ext_fault_campaign(&prepared, &cfg)
    );
    ccc_bench::history::append_best_effort(&ccc_bench::history::engine_record(
        "ext_fault_campaign",
        0,
        ccc_bench::history::build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    ));
}
