//! Figure 13 — "Cache Study Summary": operations delivered per cycle for
//! Ideal / Base / Compressed / Tailored on every benchmark (6-issue core,
//! 16KB 2-way caches, 20KB for Base).

use ccc_bench::engine::Engine;

fn main() {
    let t0 = std::time::Instant::now();
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::fig13(&prepared));
    ccc_bench::history::append_best_effort(&ccc_bench::history::engine_record(
        "fig13_cache_study",
        0,
        ccc_bench::history::build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    ));
}
