//! Figure 13 — "Cache Study Summary": operations delivered per cycle for
//! Ideal / Base / Compressed / Tailored on every benchmark (6-issue core,
//! 16KB 2-way caches, 20KB for Base).

use ccc_bench::{cache_study_scaled, mean, median, prepare_all, render_table};

fn main() {
    let prepared = prepare_all();
    let mut rows = Vec::new();
    let (mut ideals, mut bases, mut comps, mut tails) = (vec![], vec![], vec![], vec![]);
    for p in &prepared {
        let s = cache_study_scaled(p);
        ideals.push(s.ideal.ipc());
        bases.push(s.base.ipc());
        comps.push(s.compressed.ipc());
        tails.push(s.tailored.ipc());
        rows.push(vec![
            p.workload.name.to_string(),
            format!("{:.3}", s.ideal.ipc()),
            format!("{:.3}", s.base.ipc()),
            format!("{:.3}", s.compressed.ipc()),
            format!("{:.3}", s.tailored.ipc()),
            format!("{:.1}%", s.base.pred_accuracy() * 100.0),
            format!("{:.1}%", s.base.cache_hit_rate() * 100.0),
            format!("{:.1}%", s.compressed.cache_hit_rate() * 100.0),
        ]);
    }
    rows.push(vec![
        "average".into(),
        format!("{:.3}", mean(&ideals)),
        format!("{:.3}", mean(&bases)),
        format!("{:.3}", mean(&comps)),
        format!("{:.3}", mean(&tails)),
        String::new(),
        String::new(),
        String::new(),
    ]);
    rows.push(vec![
        "median".into(),
        format!("{:.3}", median(&ideals)),
        format!("{:.3}", median(&bases)),
        format!("{:.3}", median(&comps)),
        format!("{:.3}", median(&tails)),
        String::new(),
        String::new(),
        String::new(),
    ]);

    println!("Figure 13. Cache study summary — operations delivered per cycle.");
    println!("Ideal = perfect cache & predictor; issue width 6.\n");
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "ideal",
                "base",
                "compressed",
                "tailored",
                "b.pred",
                "b.I$hit",
                "c.I$hit"
            ],
            &rows
        )
    );
    println!("\nPaper shape: Tailored > Base on average (≈5-10%); Compressed beats Base in the");
    println!("median but loses on some benchmarks (compress, go, ijpeg, m88ksim) where its");
    println!("deeper misprediction/miss-repair penalty outweighs the capacity win.");

    let tail_gain = (mean(&tails) / mean(&bases) - 1.0) * 100.0;
    let comp_gain_med = (median(&comps) / median(&bases) - 1.0) * 100.0;
    println!("\nMeasured: tailored vs base (mean): {tail_gain:+.1}%");
    println!("Measured: compressed vs base (median): {comp_gain_med:+.1}%");

    // Companion view at the paper's literal cache sizes (16KB/20KB): our
    // workloads fit entirely, so the capacity effects vanish and only
    // the pipeline-depth differences remain — printed to make the
    // scaling substitution auditable.
    println!("\nPaper-spec caches (16KB/20KB; everything fits — pipeline effects only):");
    let mut rows2 = Vec::new();
    for p in &prepared {
        let s = ccc_bench::cache_study(p);
        rows2.push(vec![
            p.workload.name.to_string(),
            format!("{:.3}", s.base.ipc()),
            format!("{:.3}", s.compressed.ipc()),
            format!("{:.3}", s.tailored.ipc()),
        ]);
    }
    print!(
        "{}",
        render_table(&["benchmark", "base", "compressed", "tailored"], &rows2)
    );
}
