//! Figure 13 — "Cache Study Summary": operations delivered per cycle for
//! Ideal / Base / Compressed / Tailored on every benchmark (6-issue core,
//! 16KB 2-way caches, 20KB for Base).

use ccc_bench::engine::Engine;

fn main() {
    let prepared = Engine::from_env().prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::fig13(&prepared));
}
