//! Figure 5 — "Different Compression Techniques comparison (code segment
//! only)": per benchmark, the code segment size of every scheme as a
//! percentage of the original image.

use ccc_bench::engine::Engine;

fn main() {
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let reports = engine.reports(&prepared);
    print!("{}", ccc_bench::figures::fig05(&reports));
}
