//! Figure 5 — "Different Compression Techniques comparison (code segment
//! only)": per benchmark, the code segment size of every scheme as a
//! percentage of the original image.

use ccc_bench::{mean, render_table};
use ccc_core::CompressionReport;

fn main() {
    let schemes = ["byte", "stream", "stream_1", "full", "tailored"];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for w in &tinker_workloads::ALL {
        let program = w.compile().expect("workload compiles");
        let rep = CompressionReport::build(w.name, &program);
        let mut row = vec![w.name.to_string(), format!("{}", rep.original_bytes)];
        for (i, s) in schemes.iter().enumerate() {
            let r = rep.row(s).expect("scheme present");
            per_scheme[i].push(r.code_ratio);
            row.push(format!("{:.1}%", r.code_ratio * 100.0));
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string(), String::new()];
    for vals in &per_scheme {
        avg.push(format!("{:.1}%", mean(vals) * 100.0));
    }
    rows.push(avg);

    println!("Figure 5. Different Compression Techniques comparison (code segment only).");
    println!("Values are encoded size as % of the original 40-bit image.\n");
    let headers: Vec<&str> = std::iter::once("benchmark")
        .chain(std::iter::once("orig B"))
        .chain(schemes)
        .collect();
    print!("{}", render_table(&headers, &rows));
    println!("\nPaper reference points: full ≈ 30%, tailored ≈ 64%, byte ≈ 72%, stream ≈ 75%.");
}
