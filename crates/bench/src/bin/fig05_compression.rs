//! Figure 5 — "Different Compression Techniques comparison (code segment
//! only)": per benchmark, the code segment size of every scheme as a
//! percentage of the original image.

use ccc_bench::engine::Engine;

fn main() {
    let t0 = std::time::Instant::now();
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    let reports = engine.reports(&prepared);
    print!("{}", ccc_bench::figures::fig05(&reports));
    ccc_bench::history::append_best_effort(&ccc_bench::history::engine_record(
        "fig05_compression",
        0,
        ccc_bench::history::build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    ));
}
