//! Extension experiment for the paper's §2.2 entropy-limit observation:
//! whole-op Huffman (`full`) against op-pair Huffman (`pair`) — per-op
//! entropy vs measured bits/op, and the total ROM+dictionary cost that
//! makes pairing a bad trade.

use ccc_bench::engine::Engine;

fn main() {
    let t0 = std::time::Instant::now();
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::ext_entropy_limit(&prepared));
    ccc_bench::history::append_best_effort(&ccc_bench::history::engine_record(
        "ext_entropy_limit",
        0,
        ccc_bench::history::build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    ));
}
