//! Extension experiment for the paper's §2.2 entropy-limit observation
//! ("combining two or more compression strategies does not yield better
//! compression, since we are approaching the entropy limit of the
//! program") and its §7 future work ("different compression schemes
//! beyond Huffman").
//!
//! Compares whole-op Huffman (`full`) against op-pair Huffman (`pair`):
//! per-op entropy vs measured bits/op, and the total ROM+dictionary cost
//! that makes pairing a bad trade.

use ccc_bench::{mean, render_table};
use ccc_core::encoded::DecoderCost;
use ccc_core::schemes::{full::FullScheme, pair::PairScheme, Scheme, SchemeOutput};
use tinker_huffman::{entropy_bits, Dictionary};

fn dict_bytes(out: &SchemeOutput) -> usize {
    match &out.image.decoder {
        DecoderCost::Huffman(parts) => parts.iter().map(|p| p.k * (p.m as usize).div_ceil(8)).sum(),
        _ => 0,
    }
}

fn main() {
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for w in &tinker_workloads::ALL {
        let p = w.compile().expect("compiles");
        let dict: Dictionary<u64> = p.op_words().into_iter().collect();
        let h = entropy_bits(dict.freqs());
        let full = FullScheme::default().compress(&p).unwrap();
        let pair = PairScheme::default().compress(&p).unwrap();
        assert!(pair.verify_roundtrip(&p));
        let bits = |o: &SchemeOutput| o.image.total_bytes() as f64 * 8.0 / p.num_ops() as f64;
        let full_total = full.image.total_bytes() + dict_bytes(&full);
        let pair_total = pair.image.total_bytes() + dict_bytes(&pair);
        ratios.push(pair_total as f64 / full_total as f64);
        rows.push(vec![
            w.name.to_string(),
            format!("{h:.2}"),
            format!("{:.2}", bits(&full)),
            format!("{:.2}", bits(&pair)),
            full.image.total_bytes().to_string(),
            dict_bytes(&full).to_string(),
            pair.image.total_bytes().to_string(),
            dict_bytes(&pair).to_string(),
            format!("{:.2}x", pair_total as f64 / full_total as f64),
        ]);
    }
    println!("Extension: op-pair Huffman vs whole-op Huffman (the entropy-limit check).\n");
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "H(op) bits",
                "full b/op",
                "pair b/op",
                "full img",
                "full dict",
                "pair img",
                "pair dict",
                "pair/full total"
            ],
            &rows
        )
    );
    println!(
        "\nMean total (image + decoder dictionary): pairing costs {:.2}x whole-op coding.",
        mean(&ratios)
    );
    println!("Pairing shrinks the image only by moving the program into its dictionary —");
    println!("per-op coding already sits within a bit of the program's op entropy (§2.2).");
}
