//! Extension experiment for the paper's §2.2 entropy-limit observation:
//! whole-op Huffman (`full`) against op-pair Huffman (`pair`) — per-op
//! entropy vs measured bits/op, and the total ROM+dictionary cost that
//! makes pairing a bad trade.

use ccc_bench::engine::Engine;

fn main() {
    let prepared = Engine::from_env().prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::ext_entropy_limit(&prepared));
}
