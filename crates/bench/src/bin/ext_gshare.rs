//! Extension experiment (paper §7 future work): replace the ATB's 2-bit
//! per-block counters with a gshare direction predictor and measure the
//! effect on prediction accuracy and IPC for each encoding.

use ccc_bench::engine::Engine;

fn main() {
    let prepared = Engine::from_env().prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::ext_gshare(&prepared));
}
