//! Extension experiment (paper §7 future work): replace the ATB's 2-bit
//! per-block counters with a gshare direction predictor and measure the
//! effect on prediction accuracy and IPC for each encoding.

use ccc_bench::engine::Engine;

fn main() {
    let t0 = std::time::Instant::now();
    let engine = Engine::from_env();
    let prepared = engine.prepare_all().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(1);
    });
    print!("{}", ccc_bench::figures::ext_gshare(&prepared));
    ccc_bench::history::append_best_effort(&ccc_bench::history::engine_record(
        "ext_gshare",
        0,
        ccc_bench::history::build_features(),
        0,
        &engine,
        t0.elapsed().as_nanos() as u64,
    ));
}
