//! Extension experiment (paper §7 future work): replace the ATB's 2-bit
//! per-block counters with a gshare direction predictor and measure the
//! effect on prediction accuracy and IPC for each encoding.

use ccc_bench::{mean, prepare_all, render_table};
use ifetch_sim::{simulate, EncodingClass, FetchConfig, PredictorKind};

fn main() {
    let prepared = prepare_all();
    let mut rows = Vec::new();
    let mut base_gain = Vec::new();
    let mut tail_gain = Vec::new();
    for p in &prepared {
        let code = p.base_img.total_bytes();
        let run = |class: EncodingClass, predictor: PredictorKind| {
            let mut cfg = FetchConfig::scaled(class, code);
            cfg.predictor = predictor;
            let img = match class {
                EncodingClass::Tailored => &p.tailored_img,
                EncodingClass::Compressed => &p.compressed_img,
                _ => &p.base_img,
            };
            simulate(&p.program, img, &p.trace, &cfg)
        };
        let g = PredictorKind::Gshare { history_bits: 12 };
        let b2 = run(EncodingClass::Base, PredictorKind::AtbTwoBit);
        let bg = run(EncodingClass::Base, g);
        let t2 = run(EncodingClass::Tailored, PredictorKind::AtbTwoBit);
        let tg = run(EncodingClass::Tailored, g);
        let c2 = run(EncodingClass::Compressed, PredictorKind::AtbTwoBit);
        let cg = run(EncodingClass::Compressed, g);
        base_gain.push(bg.ipc() / b2.ipc() - 1.0);
        tail_gain.push(tg.ipc() / t2.ipc() - 1.0);
        rows.push(vec![
            p.workload.name.to_string(),
            format!("{:.1}%", b2.pred_accuracy() * 100.0),
            format!("{:.1}%", bg.pred_accuracy() * 100.0),
            format!("{:.3}", b2.ipc()),
            format!("{:.3}", bg.ipc()),
            format!("{:.3}", t2.ipc()),
            format!("{:.3}", tg.ipc()),
            format!("{:.3}", c2.ipc()),
            format!("{:.3}", cg.ipc()),
        ]);
    }
    println!("Extension: gshare (4096-entry, 12-bit history) vs per-block 2-bit counters.\n");
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "2bit acc",
                "gshare acc",
                "base 2bit",
                "base gsh",
                "tail 2bit",
                "tail gsh",
                "comp 2bit",
                "comp gsh"
            ],
            &rows
        )
    );
    println!(
        "\nMean IPC effect of gshare: base {:+.2}%, tailored {:+.2}%.",
        mean(&base_gain) * 100.0,
        mean(&tail_gain) * 100.0
    );
    println!("The paper predicts room here: a deeper decode pipeline raises the value of");
    println!("prediction accuracy, so Compressed benefits most when gshare wins.");
}
