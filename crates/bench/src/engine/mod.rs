//! The parallel prepared-workload engine.
//!
//! Every experiment binary needs the same prepared state: each workload
//! compiled, traced, and encoded under each scheme. Before this engine
//! existed, every binary recomputed all of it serially; now preparation
//! fans out across cores through a work-stealing pool ([`pool`]) and
//! each artifact is persisted in a content-addressed cache ([`cache`]),
//! so a warm run skips compile/emulate/encode entirely.
//!
//! ## Cache-key scheme
//!
//! A key is FNV-1a/128 over, in order: the engine schema version
//! ([`ENGINE_SCHEMA_VERSION`]), the artifact kind, the wire/codec
//! version the payload will be written with, the workload name, the
//! full workload source text, the compiler-options fingerprint and (for
//! images) the scheme name. Any input change — a `.tink` edit, a codec
//! change with its [`CODEC_VERSION`] bump, different `lego::Options` —
//! yields a different key, so entries are immutable and never
//! invalidated in place. See DESIGN.md §10.
//!
//! ## Self-healing (DESIGN.md §13)
//!
//! The engine assumes its infrastructure — disk, worker jobs, stage
//! builds — can fail *transiently*, and recovers instead of crashing:
//!
//! * transient cache-read errors are retried with bounded exponential
//!   backoff ([`ccc_core::RetryPolicy`]) and then degrade to a rebuild;
//! * entries with damaged bytes are **quarantined** (moved to
//!   `<cache-dir>/quarantine/`, never deleted) and rebuilt;
//! * failed cache stores are retried, then dropped (the artifact is in
//!   memory; only warm-run speed is lost);
//! * pool jobs run panic-isolated ([`pool::run_tasks_isolated`]): a
//!   poisoned job never takes a worker down, and is re-run a bounded
//!   number of times before surfacing as a typed [`PrepareError::Job`];
//! * stage builds guarded by `stage.*` failpoints retry injected flaky
//!   failures and ultimately degrade to building anyway.
//!
//! Every recovery action is counted in a [`RecoverySnapshot`]
//! (`recover.*` metrics plus `cache.quarantined`), and every injected
//! fault is logged by the [`Failpoints`] registry, so the chaos harness
//! (`tepic-cc chaos`) can reconcile the two one for one. All backoff
//! timing flows through the injectable [`Clock`]/[`Sleeper`] pair;
//! tests pin it with a `FakeClock`.

pub mod cache;
pub mod pool;

use crate::Prepared;
use cache::{ArtifactCache, CacheKey, Lookup};
use ccc_core::failpoint::{sites, Failpoints};
use ccc_core::schemes::base::encode_base;
use ccc_core::schemes::{
    base::BaseScheme, byte::ByteScheme, full::FullScheme, stream::StreamScheme,
    tailored::TailoredScheme, CompressError, Scheme,
};
use ccc_core::{CompressionReport, EncodedProgram, RetryPolicy, CODEC_VERSION};
use ccc_telemetry::{Clock, MonotonicClock, SharedSink, Sleeper, ThreadSleeper, TraceEvent};
use pool::JobPanic;
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tepic_isa::wire::{Fnv128, WireError};
use tepic_isa::{Program, PROGRAM_WIRE_VERSION};
use tinker_workloads::{Workload, WorkloadError};
use yula::{BlockTrace, Emulator, Limits, TRACE_WIRE_VERSION};

/// Version of the engine's key derivation itself plus everything the
/// wire versions do *not* capture (compiler and emulator behaviour).
/// Bump to invalidate every artifact at once.
pub const ENGINE_SCHEMA_VERSION: u32 = 1;

/// The scheme axis of the preparation matrix, in figure order.
pub const MATRIX_SCHEMES: [&str; 5] = ["byte", "stream", "stream_1", "full", "tailored"];

/// Instantiates a scheme by its figure name (including `base`).
pub fn scheme_by_name(name: &str) -> Option<Box<dyn Scheme>> {
    match name {
        "base" => Some(Box::new(BaseScheme)),
        "byte" => Some(Box::new(ByteScheme::default())),
        "full" => Some(Box::new(FullScheme::default())),
        "tailored" => Some(Box::new(TailoredScheme)),
        other => StreamScheme::named(other).map(|s| Box::new(s) as Box<dyn Scheme>),
    }
}

/// Why one workload failed to prepare.
#[derive(Debug)]
pub enum PrepareError {
    /// Compilation or emulation failed.
    Workload(WorkloadError),
    /// A scheme failed to encode the compiled program.
    Compress {
        /// Scheme name (`byte`, `full`, ...).
        scheme: String,
        /// The underlying codec failure.
        error: CompressError,
    },
    /// The pool job hosting this workload panicked on every attempt the
    /// retry budget allowed (the workers themselves survived).
    Job(JobPanic),
}

impl fmt::Display for PrepareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrepareError::Workload(e) => write!(f, "{e}"),
            PrepareError::Compress { scheme, error } => write!(f, "{scheme}: {error}"),
            PrepareError::Job(p) => write!(f, "job panicked after retries: {}", p.message),
        }
    }
}

impl std::error::Error for PrepareError {}

impl From<WorkloadError> for PrepareError {
    fn from(e: WorkloadError) -> Self {
        PrepareError::Workload(e)
    }
}

/// One workload's failure, named.
#[derive(Debug)]
pub struct WorkloadFailure {
    /// The workload that failed.
    pub workload: String,
    /// What went wrong.
    pub error: PrepareError,
}

/// Aggregated preparation failures — one entry per failed workload, so
/// a broken suite reports every casualty in one pass instead of
/// panicking at the first. Sorted by workload name, so the report is
/// byte-stable across `--jobs` settings and pool interleavings.
#[derive(Debug)]
pub struct PrepareErrors {
    /// Per-workload failures, sorted by workload name.
    pub failures: Vec<WorkloadFailure>,
}

impl fmt::Display for PrepareErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} workload(s) failed to prepare:", self.failures.len())?;
        for fail in &self.failures {
            write!(f, "\n  {}: {}", fail.workload, fail.error)?;
        }
        Ok(())
    }
}

impl std::error::Error for PrepareErrors {}

/// Counter/timer snapshot of one engine's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Cache hits for compiled programs.
    pub program_hits: u64,
    /// Cache misses (artifact rebuilt) for compiled programs.
    pub program_misses: u64,
    /// Cache hits for block traces.
    pub trace_hits: u64,
    /// Cache misses for block traces.
    pub trace_misses: u64,
    /// Cache hits for encoded images (the preparation matrix).
    pub image_hits: u64,
    /// Cache misses for encoded images.
    pub image_misses: u64,
    /// Cache hits for compression reports.
    pub report_hits: u64,
    /// Cache misses for compression reports.
    pub report_misses: u64,
    /// Entries found damaged (bad CRC/magic/decode) and rebuilt.
    pub corrupt_entries: u64,
    /// Wall-clock nanoseconds spent compiling (cold path only).
    pub compile_ns: u64,
    /// Wall-clock nanoseconds spent emulating (cold path only).
    pub emulate_ns: u64,
    /// Wall-clock nanoseconds spent encoding images (cold path only).
    pub encode_ns: u64,
    /// Wall-clock nanoseconds spent building reports (cold path only).
    pub report_ns: u64,
}

impl EngineSnapshot {
    /// Total cache hits across artifact kinds.
    pub fn hits(&self) -> u64 {
        self.program_hits + self.trace_hits + self.image_hits + self.report_hits
    }

    /// Total cache misses across artifact kinds.
    pub fn misses(&self) -> u64 {
        self.program_misses + self.trace_misses + self.image_misses + self.report_misses
    }

    /// Renders the per-stage wall clock and hit/miss table the bench
    /// driver prints.
    pub fn render(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        out.push_str("engine: stage wall-clock (cold work only) and cache traffic\n");
        out.push_str(&format!(
            "  compile {:>9.1} ms   emulate {:>9.1} ms   encode {:>9.1} ms   report {:>9.1} ms\n",
            ms(self.compile_ns),
            ms(self.emulate_ns),
            ms(self.encode_ns),
            ms(self.report_ns),
        ));
        out.push_str(&format!(
            "  cache   program {}/{}   trace {}/{}   image {}/{}   report {}/{}   (hit/miss)\n",
            self.program_hits,
            self.program_misses,
            self.trace_hits,
            self.trace_misses,
            self.image_hits,
            self.image_misses,
            self.report_hits,
            self.report_misses,
        ));
        if self.corrupt_entries > 0 {
            out.push_str(&format!(
                "  corrupt entries detected and rebuilt: {}\n",
                self.corrupt_entries
            ));
        }
        out
    }

    /// Folds the snapshot into a metrics registry under `engine.*`, the
    /// same reporting path `tepic-cc` uses for fetch and fault metrics.
    pub fn record_metrics(&self, registry: &ccc_telemetry::MetricsRegistry) {
        let pairs: [(&str, u64); 13] = [
            ("engine.program_hits", self.program_hits),
            ("engine.program_misses", self.program_misses),
            ("engine.trace_hits", self.trace_hits),
            ("engine.trace_misses", self.trace_misses),
            ("engine.image_hits", self.image_hits),
            ("engine.image_misses", self.image_misses),
            ("engine.report_hits", self.report_hits),
            ("engine.report_misses", self.report_misses),
            ("engine.corrupt_entries", self.corrupt_entries),
            ("engine.compile_ns", self.compile_ns),
            ("engine.emulate_ns", self.emulate_ns),
            ("engine.encode_ns", self.encode_ns),
            ("engine.report_ns", self.report_ns),
        ];
        for (name, v) in pairs {
            registry.counter(name).add(v);
        }
    }
}

/// Counter snapshot of the engine's *recovery* activity: what it
/// retried, what it quarantined, what it gave up on. Kept separate from
/// [`EngineSnapshot`] (cache traffic and stage timers) because a healthy
/// run is all zeros here, and because the chaos harness reconciles this
/// family one-for-one against the failpoint injection log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoverySnapshot {
    /// Transient cache-read failures observed (each is one retry-loop
    /// attempt that failed; equals the injected `cache.read` I/O fault
    /// count when no real disk errors occur).
    pub cache_read_faults: u64,
    /// Cache probes that exhausted the retry budget and degraded to a
    /// rebuild.
    pub cache_read_giveups: u64,
    /// Damaged entries moved to `<cache-dir>/quarantine/` (metric
    /// `cache.quarantined`).
    pub quarantined: u64,
    /// Failed cache-store attempts (write or publish-rename).
    pub cache_write_faults: u64,
    /// Cache stores dropped after exhausting the retry budget (the
    /// artifact stays in memory; only warm-run speed is lost).
    pub cache_write_giveups: u64,
    /// Pool-job panics caught by the isolated pool (workers survived).
    pub job_panics: u64,
    /// Panicked pool jobs re-run.
    pub job_retries: u64,
    /// Pool jobs abandoned after exhausting the retry budget
    /// (surfaced as [`PrepareError::Job`]).
    pub job_giveups: u64,
    /// Injected flaky stage failures retried.
    pub stage_faults: u64,
    /// Stages that exhausted the flaky-retry budget and degraded to
    /// building anyway.
    pub stage_giveups: u64,
    /// Total nanoseconds of backoff slept (fake or real, per the
    /// engine's [`Sleeper`]).
    pub backoff_ns: u64,
}

impl RecoverySnapshot {
    /// Total faults the engine observed and survived.
    pub fn total_faults(&self) -> u64 {
        self.cache_read_faults + self.cache_write_faults + self.job_panics + self.stage_faults
    }

    /// Whether any recovery machinery engaged at all.
    pub fn is_clean(&self) -> bool {
        *self == RecoverySnapshot::default()
    }

    /// Folds the snapshot into a metrics registry: the `recover.*`
    /// family plus the `cache.quarantined` counter.
    pub fn record_metrics(&self, registry: &ccc_telemetry::MetricsRegistry) {
        let pairs: [(&str, u64); 11] = [
            ("recover.cache_read_faults", self.cache_read_faults),
            ("recover.cache_read_giveups", self.cache_read_giveups),
            ("cache.quarantined", self.quarantined),
            ("recover.cache_write_faults", self.cache_write_faults),
            ("recover.cache_write_giveups", self.cache_write_giveups),
            ("recover.job_panics", self.job_panics),
            ("recover.job_retries", self.job_retries),
            ("recover.job_giveups", self.job_giveups),
            ("recover.stage_faults", self.stage_faults),
            ("recover.stage_giveups", self.stage_giveups),
            ("recover.backoff_ns", self.backoff_ns),
        ];
        for (name, v) in pairs {
            registry.counter(name).add(v);
        }
    }

    /// Renders the recovery table the chaos driver prints (skipped by
    /// the bench driver when [`RecoverySnapshot::is_clean`]).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("recovery: faults survived and actions taken\n");
        out.push_str(&format!(
            "  cache-read  faults {:>4}  giveups {:>4}   quarantined {:>4}\n",
            self.cache_read_faults, self.cache_read_giveups, self.quarantined
        ));
        out.push_str(&format!(
            "  cache-write faults {:>4}  giveups {:>4}\n",
            self.cache_write_faults, self.cache_write_giveups
        ));
        out.push_str(&format!(
            "  pool-job    panics {:>4}  retries {:>4}   giveups {:>4}\n",
            self.job_panics, self.job_retries, self.job_giveups
        ));
        out.push_str(&format!(
            "  stage       faults {:>4}  giveups {:>4}\n",
            self.stage_faults, self.stage_giveups
        ));
        out.push_str(&format!(
            "  backoff     {:.3} ms total\n",
            self.backoff_ns as f64 / 1e6
        ));
        out
    }
}

#[derive(Debug, Default)]
struct RecoveryCounters {
    cache_read_faults: AtomicU64,
    cache_read_giveups: AtomicU64,
    quarantined: AtomicU64,
    cache_write_faults: AtomicU64,
    cache_write_giveups: AtomicU64,
    job_panics: AtomicU64,
    job_retries: AtomicU64,
    job_giveups: AtomicU64,
    stage_faults: AtomicU64,
    stage_giveups: AtomicU64,
    backoff_ns: AtomicU64,
}

#[derive(Debug, Default)]
struct Counters {
    program_hits: AtomicU64,
    program_misses: AtomicU64,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    image_hits: AtomicU64,
    image_misses: AtomicU64,
    report_hits: AtomicU64,
    report_misses: AtomicU64,
    corrupt_entries: AtomicU64,
    compile_ns: AtomicU64,
    emulate_ns: AtomicU64,
    encode_ns: AtomicU64,
    report_ns: AtomicU64,
}

#[derive(Clone, Copy)]
enum Kind {
    Program,
    Trace,
    Image,
    Report,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Program => "program",
            Kind::Trace => "trace",
            Kind::Image => "image",
            Kind::Report => "report",
        }
    }

    /// The pipeline-stage name used for span events (matches the
    /// [`EngineSnapshot`] timer the stage feeds).
    fn stage(self) -> &'static str {
        match self {
            Kind::Program => "compile",
            Kind::Trace => "emulate",
            Kind::Image => "encode",
            Kind::Report => "report",
        }
    }

    /// The failpoint site guarding this stage's build.
    fn site(self) -> &'static str {
        match self {
            Kind::Program => sites::STAGE_COMPILE,
            Kind::Trace => sites::STAGE_EMULATE,
            Kind::Image => sites::STAGE_ENCODE,
            Kind::Report => sites::STAGE_REPORT,
        }
    }
}

/// Sensible worker count for this host.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The default on-disk cache location (under the build tree, so
/// `cargo clean` clears it).
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from("target/ccc-artifacts")
}

/// The prepared-workload engine: a worker pool plus an optional
/// content-addressed artifact cache. Shared by reference across worker
/// threads; all counters are atomic.
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    cache: Option<ArtifactCache>,
    counters: Counters,
    recovery: RecoveryCounters,
    clock: Arc<dyn Clock>,
    sleeper: Arc<dyn Sleeper>,
    failpoints: Arc<Failpoints>,
    retry: RetryPolicy,
    sink: Option<SharedSink>,
    /// Next causal span id (ids are engine-unique and non-zero; 0 is
    /// the "no span" parent sentinel).
    span_ids: AtomicU64,
}

/// Timing scope of one workload's spans during [`Engine::prepare`]:
/// the pre-allocated span id plus the min/max window over every task
/// that ran under it (across both stages and all retry attempts).
struct WorkloadScope {
    id: u64,
    min_start: AtomicU64,
    max_end: AtomicU64,
}

/// Span scaffolding for one [`Engine::prepare`] call (only built when a
/// sink is attached).
struct PrepareSpans {
    start_ns: u64,
    root: u64,
    scopes: Vec<WorkloadScope>,
}

impl Engine {
    /// An engine with no on-disk cache — every artifact is rebuilt.
    pub fn uncached(jobs: usize) -> Engine {
        Engine {
            jobs: jobs.max(1),
            cache: None,
            counters: Counters::default(),
            recovery: RecoveryCounters::default(),
            clock: Arc::new(MonotonicClock::new()),
            sleeper: Arc::new(ThreadSleeper),
            failpoints: Arc::new(Failpoints::disabled()),
            retry: RetryPolicy::default(),
            sink: None,
            span_ids: AtomicU64::new(1),
        }
    }

    /// Allocates a fresh non-zero causal span id. Public so callers
    /// that record their own spans into the engine's sink (the CLI's
    /// `simulate` span, say) draw from the same id space and never
    /// collide with the engine's stage spans.
    pub fn next_span_id(&self) -> u64 {
        self.span_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Runs `f` under workload `wi`'s span context (when spans are on),
    /// folding the task's wall-clock window into the workload scope so
    /// the workload span recorded afterwards is guaranteed to enclose
    /// every child span the task emitted — the window close happens in
    /// a drop guard, so even a panicking attempt stays enclosed.
    fn in_workload_span<T>(
        &self,
        spans: &Option<PrepareSpans>,
        wi: usize,
        f: impl FnOnce() -> T,
    ) -> T {
        let Some(spans) = spans else { return f() };
        let scope = &spans.scopes[wi];
        scope
            .min_start
            .fetch_min(self.clock.now_ns(), Ordering::Relaxed);
        struct CloseWindow<'a> {
            scope: &'a WorkloadScope,
            clock: &'a dyn Clock,
        }
        impl Drop for CloseWindow<'_> {
            fn drop(&mut self) {
                self.scope
                    .max_end
                    .fetch_max(self.clock.now_ns(), Ordering::Relaxed);
            }
        }
        let _close = CloseWindow {
            scope,
            clock: &*self.clock,
        };
        pool::with_span(scope.id, f)
    }

    /// An engine caching under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create the cache directory.
    pub fn with_cache_dir(jobs: usize, dir: impl Into<PathBuf>) -> io::Result<Engine> {
        let cache = ArtifactCache::open(dir)?;
        let mut eng = Engine::uncached(jobs);
        eng.cache = Some(cache);
        Ok(eng)
    }

    /// Replaces the clock the stage timers read. Tests inject a
    /// [`ccc_telemetry::FakeClock`] to make timer values deterministic.
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Engine {
        self.clock = clock;
        self
    }

    /// Replaces the sleeper backoff waits go through. Tests inject the
    /// same [`ccc_telemetry::FakeClock`] used for [`Engine::with_clock`]
    /// so retry schedules take zero wall-clock time.
    #[must_use]
    pub fn with_sleeper(mut self, sleeper: Arc<dyn Sleeper>) -> Engine {
        self.sleeper = sleeper;
        self
    }

    /// Arms the engine (and its cache, if any) with a failpoint
    /// registry. The chaos harness and robustness tests inject faults
    /// through this; the default registry is inactive.
    #[must_use]
    pub fn with_failpoints(mut self, failpoints: Arc<Failpoints>) -> Engine {
        self.cache = self
            .cache
            .map(|c| c.with_failpoints(Arc::clone(&failpoints)));
        self.failpoints = failpoints;
        self
    }

    /// Replaces the retry policy for transient-fault recovery.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Engine {
        self.retry = retry;
        self
    }

    /// The armed failpoint registry (inactive by default).
    pub fn failpoints(&self) -> &Arc<Failpoints> {
        &self.failpoints
    }

    /// The configured retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Attaches a span sink: every cold build and every cache probe is
    /// recorded as a [`TraceEvent::Span`] named after its pipeline stage
    /// (`compile`/`emulate`/`encode`/`report`, plus `cache-probe`).
    #[must_use]
    pub fn with_trace_sink(mut self, sink: SharedSink) -> Engine {
        self.sink = Some(sink);
        self
    }

    /// The attached span sink, if any.
    pub fn trace_sink(&self) -> Option<&SharedSink> {
        self.sink.as_ref()
    }

    /// An engine configured from the environment: `CCC_JOBS` (default:
    /// all cores), `CCC_NO_CACHE=1` to disable caching, `CCC_CACHE_DIR`
    /// to relocate it (default `target/ccc-artifacts`). If the cache
    /// directory cannot be created, the engine runs uncached and says so
    /// on stderr. `CCC_FAILPOINTS` (a `site:prob:mode,...` spec, seeded
    /// by `CCC_FAILPOINT_SEED`, default 0) arms fault injection; a
    /// malformed spec is reported on stderr and ignored.
    pub fn from_env() -> Engine {
        let jobs = std::env::var("CCC_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(default_jobs);
        let eng = if std::env::var("CCC_NO_CACHE").is_ok_and(|v| v == "1") {
            Engine::uncached(jobs)
        } else {
            let dir = std::env::var("CCC_CACHE_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|_| default_cache_dir());
            match Engine::with_cache_dir(jobs, &dir) {
                Ok(e) => e,
                Err(err) => {
                    eprintln!(
                        "warning: artifact cache unavailable at {}: {err}",
                        dir.display()
                    );
                    Engine::uncached(jobs)
                }
            }
        };
        match std::env::var("CCC_FAILPOINTS") {
            Ok(spec) if !spec.trim().is_empty() => {
                let seed = std::env::var("CCC_FAILPOINT_SEED")
                    .ok()
                    .and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0);
                match Failpoints::from_spec(&spec, seed) {
                    Ok(fp) => eng.with_failpoints(Arc::new(fp)),
                    Err(err) => {
                        eprintln!("warning: CCC_FAILPOINTS ignored: {err}");
                        eng
                    }
                }
            }
            _ => eng,
        }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether an on-disk cache is attached.
    pub fn is_cached(&self) -> bool {
        self.cache.is_some()
    }

    /// Snapshot of counters and stage timers.
    pub fn snapshot(&self) -> EngineSnapshot {
        let c = &self.counters;
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        EngineSnapshot {
            program_hits: g(&c.program_hits),
            program_misses: g(&c.program_misses),
            trace_hits: g(&c.trace_hits),
            trace_misses: g(&c.trace_misses),
            image_hits: g(&c.image_hits),
            image_misses: g(&c.image_misses),
            report_hits: g(&c.report_hits),
            report_misses: g(&c.report_misses),
            corrupt_entries: g(&c.corrupt_entries),
            compile_ns: g(&c.compile_ns),
            emulate_ns: g(&c.emulate_ns),
            encode_ns: g(&c.encode_ns),
            report_ns: g(&c.report_ns),
        }
    }

    /// Snapshot of the recovery counters (all zeros on a healthy run).
    pub fn recovery(&self) -> RecoverySnapshot {
        let r = &self.recovery;
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        RecoverySnapshot {
            cache_read_faults: g(&r.cache_read_faults),
            cache_read_giveups: g(&r.cache_read_giveups),
            quarantined: g(&r.quarantined),
            cache_write_faults: g(&r.cache_write_faults),
            cache_write_giveups: g(&r.cache_write_giveups),
            job_panics: g(&r.job_panics),
            job_retries: g(&r.job_retries),
            job_giveups: g(&r.job_giveups),
            stage_faults: g(&r.stage_faults),
            stage_giveups: g(&r.stage_giveups),
            backoff_ns: g(&r.backoff_ns),
        }
    }

    fn bump(&self, kind: Kind, hit: bool) {
        let c = &self.counters;
        let ctr = match (kind, hit) {
            (Kind::Program, true) => &c.program_hits,
            (Kind::Program, false) => &c.program_misses,
            (Kind::Trace, true) => &c.trace_hits,
            (Kind::Trace, false) => &c.trace_misses,
            (Kind::Image, true) => &c.image_hits,
            (Kind::Image, false) => &c.image_misses,
            (Kind::Report, true) => &c.report_hits,
            (Kind::Report, false) => &c.report_misses,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    fn timer_of(&self, kind: Kind) -> &AtomicU64 {
        match kind {
            Kind::Program => &self.counters.compile_ns,
            Kind::Trace => &self.counters.emulate_ns,
            Kind::Image => &self.counters.encode_ns,
            Kind::Report => &self.counters.report_ns,
        }
    }

    /// Probes the cache under the retry policy: transient read errors
    /// are retried with backoff, then degrade to a miss (rebuild).
    fn probe_with_retry(&self, cache: &ArtifactCache, key: &CacheKey) -> Lookup {
        let (res, trace) =
            self.retry
                .run(&*self.clock, &*self.sleeper, |_| match cache.load(key) {
                    Lookup::Transient => {
                        self.recovery
                            .cache_read_faults
                            .fetch_add(1, Ordering::Relaxed);
                        Err(())
                    }
                    other => Ok(other),
                });
        self.recovery
            .backoff_ns
            .fetch_add(trace.slept_ns(), Ordering::Relaxed);
        match res {
            Ok(lookup) => lookup,
            Err(()) => {
                // Retry budget exhausted: degrade to a rebuild. The
                // entry on disk (if any) stays put for a later run.
                self.recovery
                    .cache_read_giveups
                    .fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
        }
    }

    /// Records a damaged entry and moves it to quarantine (never
    /// deleted; the rebuild will store a fresh entry alongside).
    fn quarantine_entry(&self, cache: &ArtifactCache, key: &CacheKey) {
        self.counters
            .corrupt_entries
            .fetch_add(1, Ordering::Relaxed);
        if cache.quarantine(key).is_ok() {
            self.recovery.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Stores under the retry policy; a store that keeps failing is
    /// dropped (the artifact is in memory, only warm-run speed is lost).
    fn store_with_retry(&self, cache: &ArtifactCache, key: &CacheKey, payload: &[u8]) {
        let (res, trace) = self.retry.run(&*self.clock, &*self.sleeper, |_| {
            cache.store(key, payload).map_err(|_| ())
        });
        let failed_attempts = u64::from(trace.attempts) - u64::from(res.is_ok());
        if failed_attempts > 0 {
            self.recovery
                .cache_write_faults
                .fetch_add(failed_attempts, Ordering::Relaxed);
        }
        self.recovery
            .backoff_ns
            .fetch_add(trace.slept_ns(), Ordering::Relaxed);
        if res.is_err() {
            self.recovery
                .cache_write_giveups
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Retries injected flaky failures at this stage's failpoint site,
    /// then degrades to proceeding anyway: an infrastructure fault must
    /// never change what the engine computes, only how long it takes.
    /// Costs one atomic load when no failpoints are armed.
    fn stage_admission(&self, kind: Kind) {
        if !self.failpoints.is_active() {
            return;
        }
        let site = kind.site();
        let (res, trace) = self.retry.run(&*self.clock, &*self.sleeper, |_| {
            if self.failpoints.check(site).is_some() {
                self.recovery.stage_faults.fetch_add(1, Ordering::Relaxed);
                Err(())
            } else {
                Ok(())
            }
        });
        self.recovery
            .backoff_ns
            .fetch_add(trace.slept_ns(), Ordering::Relaxed);
        if res.is_err() {
            self.recovery.stage_giveups.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The shared cached-artifact path: probe (with retry and
    /// quarantine), decode, else build (behind the stage failpoint),
    /// store (with retry).
    fn cached<T>(
        &self,
        kind: Kind,
        key: &CacheKey,
        decode: impl Fn(&[u8]) -> Result<T, WireError>,
        encode: impl Fn(&T) -> Vec<u8>,
        build: impl FnOnce() -> Result<T, PrepareError>,
    ) -> Result<T, PrepareError> {
        if let Some(cache) = &self.cache {
            // Only pay for clock reads on the probe when someone listens.
            let probe_start = self.sink.as_ref().map(|_| self.clock.now_ns());
            let looked = self.probe_with_retry(cache, key);
            if let (Some(sink), Some(start)) = (&self.sink, probe_start) {
                sink.record(TraceEvent::Span {
                    name: "cache-probe",
                    detail: format!("{}/{}", kind.name(), key.label),
                    id: self.next_span_id(),
                    parent: pool::current_span(),
                    start_ns: start,
                    dur_ns: self.clock.now_ns().saturating_sub(start),
                });
            }
            match looked {
                Lookup::Hit(payload) => match decode(&payload) {
                    Ok(v) => {
                        self.bump(kind, true);
                        return Ok(v);
                    }
                    Err(_) => {
                        // CRC passed but the payload does not parse:
                        // treat exactly like a damaged entry.
                        self.quarantine_entry(cache, key);
                    }
                },
                Lookup::Corrupt => {
                    self.quarantine_entry(cache, key);
                }
                Lookup::Miss => {}
                Lookup::Transient => unreachable!("probe_with_retry resolves Transient"),
            }
        }
        self.stage_admission(kind);
        let start = self.clock.now_ns();
        let value = build()?;
        let dur = self.clock.now_ns().saturating_sub(start);
        self.timer_of(kind).fetch_add(dur, Ordering::Relaxed);
        self.bump(kind, false);
        if let Some(sink) = &self.sink {
            // The span and the stage timer above are fed the same
            // start/dur pair, so `perf --attr`'s per-stage rollups
            // reconcile *exactly* with the snapshot timers.
            sink.record(TraceEvent::Span {
                name: kind.stage(),
                detail: key.label.clone(),
                id: self.next_span_id(),
                parent: pool::current_span(),
                start_ns: start,
                dur_ns: dur,
            });
        }
        if let Some(cache) = &self.cache {
            self.store_with_retry(cache, key, &encode(&value));
        }
        Ok(value)
    }

    fn key(&self, kind: Kind, label: String, parts: &dyn Fn(&mut Fnv128)) -> CacheKey {
        let mut h = Fnv128::new();
        h.update_u32(ENGINE_SCHEMA_VERSION);
        h.update_str(kind.name());
        parts(&mut h);
        CacheKey::new(kind.name(), label, &h)
    }

    fn source_parts(h: &mut Fnv128, name: &str, source: &str, opts: &lego::Options) {
        h.update_str(name);
        h.update_str(source);
        h.update_str(&options_fingerprint(opts));
    }

    /// The compiled program for `source` (cached).
    ///
    /// # Errors
    ///
    /// [`PrepareError::Workload`] on compile failure.
    pub fn program(
        &self,
        name: &str,
        source: &str,
        opts: &lego::Options,
    ) -> Result<Program, PrepareError> {
        let key = self.key(Kind::Program, name.to_string(), &|h| {
            h.update_u32(PROGRAM_WIRE_VERSION);
            Self::source_parts(h, name, source, opts);
        });
        self.cached(
            Kind::Program,
            &key,
            tepic_isa::program_from_bytes,
            tepic_isa::program_to_bytes,
            || {
                lego::compile(source, opts)
                    .map_err(|e| PrepareError::Workload(WorkloadError::Compile(e)))
            },
        )
    }

    /// The dynamic block trace of `program` (cached). `program` must be
    /// the artifact [`Engine::program`] returns for the same inputs.
    ///
    /// # Errors
    ///
    /// [`PrepareError::Workload`] on emulation failure.
    pub fn trace(
        &self,
        name: &str,
        source: &str,
        opts: &lego::Options,
        program: &Program,
    ) -> Result<BlockTrace, PrepareError> {
        let key = self.key(Kind::Trace, name.to_string(), &|h| {
            h.update_u32(TRACE_WIRE_VERSION);
            Self::source_parts(h, name, source, opts);
        });
        self.cached(
            Kind::Trace,
            &key,
            BlockTrace::from_wire_bytes,
            BlockTrace::to_wire_bytes,
            || {
                Emulator::new(program)
                    .run(&Limits::default())
                    .map(|r| r.trace)
                    .map_err(|e| PrepareError::Workload(WorkloadError::Run(e)))
            },
        )
    }

    /// The encoded image of `program` under `scheme` (cached) — one cell
    /// of the preparation matrix.
    ///
    /// # Errors
    ///
    /// [`PrepareError::Compress`] when the scheme rejects the program;
    /// also if `scheme` names no known scheme.
    pub fn image(
        &self,
        name: &str,
        source: &str,
        opts: &lego::Options,
        scheme: &str,
        program: &Program,
    ) -> Result<EncodedProgram, PrepareError> {
        let key = self.key(Kind::Image, format!("{name}-{scheme}"), &|h| {
            h.update_u32(CODEC_VERSION);
            Self::source_parts(h, name, source, opts);
            h.update_str(scheme);
        });
        self.cached(
            Kind::Image,
            &key,
            ccc_core::encoded_from_bytes,
            ccc_core::encoded_to_bytes,
            || {
                let s = scheme_by_name(scheme).ok_or_else(|| PrepareError::Compress {
                    scheme: scheme.to_string(),
                    error: CompressError::Integrity {
                        detail: "unknown scheme name",
                    },
                })?;
                s.compress(program)
                    .map(|out| out.image)
                    .map_err(|error| PrepareError::Compress {
                        scheme: scheme.to_string(),
                        error,
                    })
            },
        )
    }

    /// The full cross-scheme [`CompressionReport`] for `program`
    /// (cached) — the data behind Figures 5, 7 and 10.
    pub fn report(
        &self,
        name: &str,
        source: &str,
        opts: &lego::Options,
        program: &Program,
    ) -> CompressionReport {
        let key = self.key(Kind::Report, name.to_string(), &|h| {
            h.update_u32(CODEC_VERSION);
            Self::source_parts(h, name, source, opts);
        });
        self.cached(
            Kind::Report,
            &key,
            ccc_core::report_from_bytes,
            ccc_core::report_to_bytes,
            || Ok(CompressionReport::build(name, program)),
        )
        .expect("report build is infallible")
    }

    /// Panics the current pool job if the `pool.job` failpoint fires.
    /// Called at the top of every task the engine dispatches; the
    /// isolated pool catches the panic and the engine re-runs the job.
    fn pool_job_admission(&self) {
        if self.failpoints.check(sites::POOL_JOB).is_some() {
            panic!("injected failpoint: pool.job");
        }
    }

    /// Runs `tasks` on the panic-isolated pool, re-running panicked jobs
    /// (with backoff) up to the retry policy's attempt budget. Healthy
    /// workers are never lost to a poisoned job; a job that panics on
    /// every attempt surfaces as `Err(JobPanic)` in its original slot.
    fn run_jobs_healed<T, F>(&self, tasks: Vec<F>) -> Vec<Result<T, JobPanic>>
    where
        T: Send,
        F: Fn() -> T + Send + Sync,
    {
        let n = tasks.len();
        let mut results: Vec<Option<Result<T, JobPanic>>> = (0..n).map(|_| None).collect();
        let mut pending: Vec<usize> = (0..n).collect();
        let mut attempt: u32 = 1;
        let max_attempts = self.retry.max_attempts.max(1);
        loop {
            let round: Vec<_> = pending
                .iter()
                .map(|&i| {
                    let task = &tasks[i];
                    move || task()
                })
                .collect();
            let out = pool::run_tasks_isolated(self.jobs, round);
            let mut panicked: Vec<(usize, JobPanic)> = Vec::new();
            for (&i, r) in pending.iter().zip(out) {
                match r {
                    Ok(v) => results[i] = Some(Ok(v)),
                    Err(p) => {
                        self.recovery.job_panics.fetch_add(1, Ordering::Relaxed);
                        panicked.push((i, p));
                    }
                }
            }
            if panicked.is_empty() {
                break;
            }
            if attempt >= max_attempts {
                for (i, p) in panicked {
                    self.recovery.job_giveups.fetch_add(1, Ordering::Relaxed);
                    results[i] = Some(Err(JobPanic {
                        task_index: i,
                        message: p.message,
                    }));
                }
                break;
            }
            let delay = self.retry.delay_after(attempt);
            self.sleeper.sleep_ns(delay);
            self.recovery.backoff_ns.fetch_add(delay, Ordering::Relaxed);
            self.recovery
                .job_retries
                .fetch_add(panicked.len() as u64, Ordering::Relaxed);
            pending = panicked.into_iter().map(|(i, _)| i).collect();
            attempt += 1;
        }
        results
            .into_iter()
            .map(|r| r.expect("every slot resolved"))
            .collect()
    }

    /// Prepares `list` in parallel: compile + trace per workload, then
    /// the workload x scheme image matrix, all through the cache. Pool
    /// jobs are panic-isolated and re-run on injected panics.
    ///
    /// # Errors
    ///
    /// [`PrepareErrors`] aggregating every failed workload (the paper
    /// harness cannot proceed on partial data, but it *can* report all
    /// casualties at once instead of panicking at the first), sorted by
    /// workload name.
    pub fn prepare(&self, list: &[&'static Workload]) -> Result<Vec<Prepared>, PrepareErrors> {
        let opts = lego::Options::default();

        // Causal-span scaffolding (sink-gated, so the no-sink path does
        // not read the clock): one root `prepare` span, one `workload`
        // child per entry. Stage tasks below run under their workload's
        // span context, which travels with the job closure across the
        // work-stealing pool — the span tree reflects which workload
        // *caused* a build, not which thread ran it.
        let spans = self.sink.as_ref().map(|_| PrepareSpans {
            start_ns: self.clock.now_ns(),
            root: self.next_span_id(),
            scopes: list
                .iter()
                .map(|_| WorkloadScope {
                    id: self.next_span_id(),
                    min_start: AtomicU64::new(u64::MAX),
                    max_end: AtomicU64::new(0),
                })
                .collect(),
        });

        // Stage 1: compile + trace, one task per workload.
        let stage1: Vec<Result<(Program, BlockTrace), PrepareError>> = self
            .run_jobs_healed(
                list.iter()
                    .enumerate()
                    .map(|(wi, w)| {
                        let opts = &opts;
                        let spans = &spans;
                        move || -> Result<(Program, BlockTrace), PrepareError> {
                            self.in_workload_span(spans, wi, || {
                                self.pool_job_admission();
                                let program = self.program(w.name, w.source(), opts)?;
                                let trace = self.trace(w.name, w.source(), opts, &program)?;
                                Ok((program, trace))
                            })
                        }
                    })
                    .collect(),
            )
            .into_iter()
            .map(|r| r.unwrap_or_else(|p| Err(PrepareError::Job(p))))
            .collect();

        // Stage 2: the image matrix over every workload that compiled.
        let mut matrix_tasks: Vec<(usize, &'static str, &Program, &'static Workload)> = Vec::new();
        for (wi, (w, r)) in list.iter().zip(&stage1).enumerate() {
            if let Ok((program, _)) = r {
                for scheme in MATRIX_SCHEMES {
                    matrix_tasks.push((wi, scheme, program, w));
                }
            }
        }
        let images: Vec<Result<EncodedProgram, PrepareError>> = self
            .run_jobs_healed(
                matrix_tasks
                    .iter()
                    .map(|&(wi, scheme, program, w)| {
                        let opts = &opts;
                        let spans = &spans;
                        move || {
                            self.in_workload_span(spans, wi, || {
                                self.pool_job_admission();
                                self.image(w.name, w.source(), opts, scheme, program)
                            })
                        }
                    })
                    .collect(),
            )
            .into_iter()
            .map(|r| r.unwrap_or_else(|p| Err(PrepareError::Job(p))))
            .collect();

        // Close the span scaffolding: each workload span's window is
        // the union of its task windows (so children are nested by
        // construction), and the root span brackets everything.
        if let (Some(sink), Some(spans)) = (&self.sink, &spans) {
            for (scope, w) in spans.scopes.iter().zip(list) {
                let min = scope.min_start.load(Ordering::Relaxed);
                let max = scope.max_end.load(Ordering::Relaxed);
                if max == 0 {
                    continue; // no task ran under this workload
                }
                sink.record(TraceEvent::Span {
                    name: "workload",
                    detail: w.name.to_string(),
                    id: scope.id,
                    parent: spans.root,
                    start_ns: min,
                    dur_ns: max.saturating_sub(min),
                });
            }
            sink.record(TraceEvent::Span {
                name: "prepare",
                detail: format!("{} workloads", list.len()),
                id: spans.root,
                parent: pool::current_span(),
                start_ns: spans.start_ns,
                dur_ns: self.clock.now_ns().saturating_sub(spans.start_ns),
            });
        }

        // Aggregate: pair matrix results back to workloads, keeping the
        // first error per workload (stage-1 errors already won above).
        let mut per_workload: Vec<Result<Vec<EncodedProgram>, PrepareError>> =
            list.iter().map(|_| Ok(Vec::new())).collect();
        for (&(wi, _, _, _), img) in matrix_tasks.iter().zip(images) {
            match (&mut per_workload[wi], img) {
                (Ok(v), Ok(img)) => v.push(img),
                (slot @ Ok(_), Err(e)) => *slot = Err(e),
                (Err(_), _) => {}
            }
        }

        let mut prepared = Vec::new();
        let mut failures = Vec::new();
        for ((w, stage1), images) in list.iter().zip(stage1).zip(per_workload) {
            match (stage1, images) {
                (Ok((program, trace)), Ok(images)) => {
                    let [byte_img, stream_img, stream1_img, compressed_img, tailored_img]: [EncodedProgram;
                        5] = images.try_into().expect("five matrix schemes");
                    let base_img = encode_base(&program);
                    prepared.push(Prepared {
                        workload: w,
                        program,
                        trace,
                        base_img,
                        byte_img,
                        stream_img,
                        stream1_img,
                        compressed_img,
                        tailored_img,
                    });
                }
                (Err(error), _) | (Ok(_), Err(error)) => failures.push(WorkloadFailure {
                    workload: w.name.to_string(),
                    error,
                }),
            }
        }
        if failures.is_empty() {
            Ok(prepared)
        } else {
            // Name order, not pool-completion order: the failure report
            // must be byte-stable across --jobs settings.
            failures.sort_by(|a, b| a.workload.cmp(&b.workload));
            Err(PrepareErrors { failures })
        }
    }

    /// Prepares the whole benchmark suite ([`tinker_workloads::ALL`]).
    ///
    /// # Errors
    ///
    /// As [`Engine::prepare`].
    pub fn prepare_all(&self) -> Result<Vec<Prepared>, PrepareErrors> {
        let list: Vec<&'static Workload> = tinker_workloads::ALL.iter().collect();
        self.prepare(&list)
    }

    /// Builds (cached, in parallel) the per-workload compression reports
    /// for already-prepared workloads. Report building is infallible, so
    /// a job whose panic-retry budget runs out falls back to building
    /// inline on the caller's thread (outside the `pool.job` failpoint).
    pub fn reports(&self, prepared: &[Prepared]) -> Vec<CompressionReport> {
        let opts = lego::Options::default();
        // A root span bracketing the whole report pass; each report
        // task runs under it so its stage spans parent correctly.
        let root = self
            .sink
            .as_ref()
            .map(|_| (self.next_span_id(), self.clock.now_ns()));
        let root_id = root.map_or(0, |(id, _)| id);
        let out = self.run_jobs_healed(
            prepared
                .iter()
                .map(|p| {
                    let opts = &opts;
                    move || {
                        pool::with_span(root_id, || {
                            self.pool_job_admission();
                            self.report(p.workload.name, p.workload.source(), opts, &p.program)
                        })
                    }
                })
                .collect(),
        );
        let reports = out
            .into_iter()
            .zip(prepared)
            .map(|(r, p)| {
                r.unwrap_or_else(|_| {
                    pool::with_span(root_id, || {
                        self.report(p.workload.name, p.workload.source(), &opts, &p.program)
                    })
                })
            })
            .collect();
        if let (Some(sink), Some((id, start_ns))) = (&self.sink, root) {
            sink.record(TraceEvent::Span {
                name: "reports",
                detail: format!("{} workloads", prepared.len()),
                id,
                parent: pool::current_span(),
                start_ns,
                dur_ns: self.clock.now_ns().saturating_sub(start_ns),
            });
        }
        reports
    }
}

/// Stable textual fingerprint of the compiler options that affect
/// generated code (part of every cache key).
fn options_fingerprint(o: &lego::Options) -> String {
    format!(
        "optimize={};opt_iters={};data_base={:#x};tail_duplicate={:?}",
        o.optimize, o.opt_iters, o.data_base, o.tail_duplicate
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &Workload = &Workload::custom(
        "engine-good",
        "tiny valid workload",
        "fn main() { var i; for (i = 0; i < 40; i = i + 1) { print(i * i); } }",
    );
    const ALSO_GOOD: &Workload = &Workload::custom(
        "engine-good-2",
        "another tiny valid workload",
        "fn main() { var i; var s = 0; for (i = 0; i < 30; i = i + 1) { s = s + i; } print(s); }",
    );
    const BAD: &Workload = &Workload::custom(
        "engine-bad",
        "does not even parse",
        "fn main( { this is not tink ",
    );

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ccc-engine-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn failures_are_aggregated_per_workload_not_panicked() {
        let eng = Engine::uncached(2);
        let err = eng
            .prepare(&[GOOD, BAD, ALSO_GOOD])
            .expect_err("bad workload must fail the batch");
        assert_eq!(err.failures.len(), 1, "only the bad workload fails");
        assert_eq!(err.failures[0].workload, "engine-bad");
        assert!(matches!(
            err.failures[0].error,
            PrepareError::Workload(WorkloadError::Compile(_))
        ));
        let msg = err.to_string();
        assert!(
            msg.contains("engine-bad"),
            "message names the workload: {msg}"
        );
    }

    #[test]
    fn good_workloads_prepare_fully() {
        let eng = Engine::uncached(4);
        let prepared = eng.prepare(&[GOOD]).unwrap();
        assert_eq!(prepared.len(), 1);
        let p = &prepared[0];
        assert!(p.program.num_ops() > 0);
        assert!(!p.trace.is_empty());
        for (name, img) in p.images() {
            assert!(img.check_layout(), "{name} layout");
            assert!(img.total_bytes() > 0, "{name} empty");
        }
        let snap = eng.snapshot();
        assert_eq!(snap.hits(), 0, "uncached engine never hits");
        assert_eq!(snap.image_misses, MATRIX_SCHEMES.len() as u64);
    }

    #[test]
    fn warm_run_serves_every_artifact_from_cache() {
        let dir = scratch("warm");
        let _ = std::fs::remove_dir_all(&dir);
        let cold = Engine::with_cache_dir(2, &dir).unwrap();
        let a = cold.prepare(&[GOOD]).unwrap();
        let snap = cold.snapshot();
        assert_eq!(snap.misses(), 2 + MATRIX_SCHEMES.len() as u64);
        assert_eq!(snap.hits(), 0);

        let warm = Engine::with_cache_dir(2, &dir).unwrap();
        let b = warm.prepare(&[GOOD]).unwrap();
        let snap = warm.snapshot();
        assert_eq!(snap.misses(), 0, "warm run must rebuild nothing");
        assert_eq!(snap.hits(), 2 + MATRIX_SCHEMES.len() as u64);

        assert_eq!(a[0].program, b[0].program);
        assert_eq!(a[0].trace, b[0].trace);
        for ((na, ia), (nb, ib)) in a[0].images().zip(b[0].images()) {
            assert_eq!(na, nb);
            assert_eq!(ia, ib, "{na}: warm image differs from cold");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fake_clock_makes_stage_timers_deterministic() {
        use ccc_telemetry::FakeClock;
        // jobs=1 serializes the builds; each cold build brackets exactly
        // two clock reads, so every stage timer is an exact multiple of
        // the fake clock's step.
        const STEP: u64 = 1_000;
        let eng = Engine::uncached(1).with_clock(Arc::new(FakeClock::with_step(STEP)));
        eng.prepare(&[GOOD]).unwrap();
        let snap = eng.snapshot();
        assert_eq!(snap.compile_ns, STEP, "one compile build");
        assert_eq!(snap.emulate_ns, STEP, "one emulate build");
        assert_eq!(
            snap.encode_ns,
            STEP * MATRIX_SCHEMES.len() as u64,
            "one encode build per matrix scheme"
        );
        assert_eq!(snap.report_ns, 0, "no report requested");
    }

    #[test]
    fn sink_records_one_span_per_cold_build_and_probe() {
        use ccc_telemetry::{SharedSink, TraceEvent};
        let dir = scratch("spans");
        let _ = std::fs::remove_dir_all(&dir);
        let sink = SharedSink::new(1 << 12);
        let eng = Engine::with_cache_dir(2, &dir)
            .unwrap()
            .with_trace_sink(sink.clone());
        eng.prepare(&[GOOD]).unwrap();
        let events = eng.trace_sink().unwrap().drain();
        let count = |stage: &str| {
            events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Span { name, .. } if *name == stage))
                .count() as u64
        };
        assert_eq!(count("compile"), 1);
        assert_eq!(count("emulate"), 1);
        assert_eq!(count("encode"), MATRIX_SCHEMES.len() as u64);
        assert_eq!(
            count("cache-probe"),
            2 + MATRIX_SCHEMES.len() as u64,
            "every cached() call probes once"
        );
        // Span durations come from a monotonic clock.
        for e in &events {
            if let TraceEvent::Span { name, detail, .. } = e {
                assert!(!detail.is_empty(), "span {name} has an empty detail");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prepare_spans_form_a_causal_forest_that_reconciles_with_timers() {
        use ccc_telemetry::spans::SpanForest;
        use ccc_telemetry::SharedSink;
        let sink = SharedSink::new(1 << 12);
        let eng = Engine::uncached(8).with_trace_sink(sink.clone());
        let prepared = eng.prepare(&[GOOD, ALSO_GOOD]).unwrap();
        eng.reports(&prepared);
        let events = sink.drain();
        let forest = SpanForest::build(&events).expect("well-formed span forest");

        // Exactly two roots: the prepare pass and the report pass.
        let root_names: Vec<_> = forest.roots().map(|r| r.name).collect();
        assert_eq!(root_names, vec!["prepare", "reports"]);

        // Every compile/emulate/encode span parents to a workload span
        // whose detail is its workload's name — across the stealing
        // pool under jobs=8.
        let node_of = |id: u64| forest.nodes().iter().find(|n| n.id == id).unwrap();
        for n in forest.nodes() {
            match n.name {
                "compile" | "emulate" => {
                    let p = node_of(n.parent);
                    assert_eq!(p.name, "workload");
                    assert_eq!(p.detail, n.detail, "stage span under its workload");
                }
                "encode" => {
                    let p = node_of(n.parent);
                    assert_eq!(p.name, "workload");
                    assert!(
                        n.detail.starts_with(&p.detail),
                        "encode label {} under workload {}",
                        n.detail,
                        p.detail
                    );
                }
                "report" => assert_eq!(node_of(n.parent).name, "reports"),
                _ => {}
            }
        }

        // Per-stage span rollups reconcile *exactly* with the engine's
        // stage timers (both sides are fed the same start/dur pair).
        let roll = forest.stage_rollup();
        let snap = eng.snapshot();
        assert_eq!(roll["compile"].total_ns, snap.compile_ns);
        assert_eq!(roll["emulate"].total_ns, snap.emulate_ns);
        assert_eq!(roll["encode"].total_ns, snap.encode_ns);
        assert_eq!(roll["report"].total_ns, snap.report_ns);

        // The critical path descends from the latest-finishing root.
        let path = forest.critical_path();
        assert!(!path.is_empty());
        assert_eq!(path[0].parent, 0);
    }

    #[test]
    fn scheme_registry_matches_matrix() {
        for s in MATRIX_SCHEMES {
            assert!(scheme_by_name(s).is_some(), "{s} missing");
        }
        assert!(scheme_by_name("base").is_some());
        assert!(scheme_by_name("no-such-scheme").is_none());
    }

    #[test]
    fn prepare_errors_sort_by_workload_name() {
        const Z_BAD: &Workload = &Workload::custom("z-bad", "bad", "fn main( {");
        const A_BAD: &Workload = &Workload::custom("a-bad", "bad", "fn main( {");
        let eng = Engine::uncached(4);
        // Submitted z before a: the report must still come out sorted.
        let err = eng.prepare(&[Z_BAD, GOOD, A_BAD]).unwrap_err();
        let names: Vec<_> = err.failures.iter().map(|f| f.workload.as_str()).collect();
        assert_eq!(names, ["a-bad", "z-bad"]);
    }

    fn fake_time_engine(dir: &PathBuf, spec: &str, seed: u64) -> Engine {
        use ccc_telemetry::FakeClock;
        let clock = Arc::new(FakeClock::with_step(0));
        Engine::with_cache_dir(2, dir)
            .unwrap()
            .with_clock(clock.clone())
            .with_sleeper(clock)
            .with_failpoints(Arc::new(Failpoints::from_spec(spec, seed).unwrap()))
    }

    #[test]
    fn corrupt_entry_is_quarantined_not_deleted() {
        let dir = scratch("quarantine");
        let _ = std::fs::remove_dir_all(&dir);
        let cold = Engine::with_cache_dir(2, &dir).unwrap();
        let a = cold.prepare(&[GOOD]).unwrap();

        // Damage the stored program entry on disk.
        let entry = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .find(|e| e.file_name().to_string_lossy().starts_with("program-"))
            .expect("a program entry exists");
        let path = entry.path();
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();

        let warm = Engine::with_cache_dir(2, &dir).unwrap();
        let b = warm.prepare(&[GOOD]).unwrap();
        assert_eq!(a[0].program, b[0].program, "rebuild matches");
        assert_eq!(warm.snapshot().corrupt_entries, 1);
        let rec = warm.recovery();
        assert_eq!(rec.quarantined, 1);
        // The damaged bytes moved to quarantine/ under the same name.
        let qpath = dir
            .join(cache::QUARANTINE_DIR)
            .join(path.file_name().unwrap());
        assert_eq!(std::fs::read(&qpath).unwrap(), raw, "evidence preserved");
        assert!(path.exists(), "rebuild stored a fresh entry");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_read_faults_degrade_to_rebuild() {
        let dir = scratch("transient-read");
        let _ = std::fs::remove_dir_all(&dir);
        let clean = Engine::with_cache_dir(2, &dir).unwrap();
        let a = clean.prepare(&[GOOD]).unwrap();

        // Every read fails with an injected I/O error: the engine must
        // exhaust retries, give up, and rebuild — same results out.
        let eng = fake_time_engine(&dir, "cache.read:1.0:io", 42);
        let b = eng.prepare(&[GOOD]).unwrap();
        assert_eq!(a[0].program, b[0].program);
        assert_eq!(a[0].trace, b[0].trace);
        let rec = eng.recovery();
        let probes = 2 + MATRIX_SCHEMES.len() as u64;
        assert_eq!(rec.cache_read_giveups, probes, "every probe gave up");
        assert_eq!(
            rec.cache_read_faults,
            probes * u64::from(eng.retry_policy().max_attempts),
            "one fault per attempt per probe"
        );
        assert_eq!(
            rec.cache_read_faults,
            eng.failpoints().total_fired(),
            "recovery reconciles with the injection log"
        );
        assert!(rec.backoff_ns > 0, "backoff was (fake-)slept");
        assert_eq!(eng.snapshot().misses(), probes, "all rebuilt");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_faults_are_retried_then_dropped() {
        let dir = scratch("write-fault");
        let _ = std::fs::remove_dir_all(&dir);
        let eng = fake_time_engine(&dir, "cache.write:1.0:io", 7);
        let prepared = eng.prepare(&[GOOD]).unwrap();
        assert_eq!(prepared.len(), 1, "stores are non-fatal");
        let rec = eng.recovery();
        let stores = 2 + MATRIX_SCHEMES.len() as u64;
        assert_eq!(rec.cache_write_giveups, stores);
        assert_eq!(
            rec.cache_write_faults,
            eng.failpoints().total_fired(),
            "every injected write fault is accounted for"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(hook);
        r
    }

    #[test]
    fn poisoned_jobs_are_retried_then_typed() {
        let dir = scratch("poisoned");
        let _ = std::fs::remove_dir_all(&dir);
        // Every job panics on every attempt: prepare must survive the
        // pool, exhaust retries, and report typed per-workload errors.
        let eng = fake_time_engine(&dir, "pool.job:1.0:panic", 11);
        let err = quiet_panics(|| eng.prepare(&[ALSO_GOOD, GOOD]).unwrap_err());
        assert_eq!(err.failures.len(), 2);
        let names: Vec<_> = err.failures.iter().map(|f| f.workload.as_str()).collect();
        assert_eq!(names, ["engine-good", "engine-good-2"], "sorted by name");
        for f in &err.failures {
            assert!(matches!(f.error, PrepareError::Job(_)), "{}", f.error);
        }
        let rec = eng.recovery();
        let max = u64::from(eng.retry_policy().max_attempts);
        assert_eq!(rec.job_giveups, 2);
        assert_eq!(rec.job_panics, 2 * max);
        assert_eq!(rec.job_retries, 2 * (max - 1));
        assert_eq!(rec.job_panics, eng.failpoints().total_fired());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn intermittent_job_panics_heal_to_identical_results() {
        let dir = scratch("heal");
        let _ = std::fs::remove_dir_all(&dir);
        let clean = Engine::with_cache_dir(2, &dir).unwrap();
        let a = clean.prepare(&[GOOD]).unwrap();

        let eng = fake_time_engine(&dir, "pool.job:0.4:panic,cache.read:0.3:io", 1234);
        let b = quiet_panics(|| eng.prepare(&[GOOD]).unwrap());
        assert_eq!(a[0].program, b[0].program);
        assert_eq!(a[0].trace, b[0].trace);
        for ((na, ia), (nb, ib)) in a[0].images().zip(b[0].images()) {
            assert_eq!(na, nb);
            assert_eq!(ia, ib, "{na}: healed run differs");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flaky_stages_degrade_to_building() {
        let dir = scratch("flaky-stage");
        let _ = std::fs::remove_dir_all(&dir);
        // Flaky on every arrival: admission retries then waves the
        // build through; results must be unaffected.
        let eng = fake_time_engine(&dir, "stage.compile:1.0:flaky,stage.encode:1.0:flaky", 5);
        let prepared = eng.prepare(&[GOOD]).unwrap();
        assert_eq!(prepared.len(), 1);
        let rec = eng.recovery();
        let builds = 1 + MATRIX_SCHEMES.len() as u64; // compile + encodes
        assert_eq!(rec.stage_giveups, builds);
        assert_eq!(rec.stage_faults, eng.failpoints().total_fired());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
