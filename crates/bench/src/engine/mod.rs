//! The parallel prepared-workload engine.
//!
//! Every experiment binary needs the same prepared state: each workload
//! compiled, traced, and encoded under each scheme. Before this engine
//! existed, every binary recomputed all of it serially; now preparation
//! fans out across cores through a work-stealing pool ([`pool`]) and
//! each artifact is persisted in a content-addressed cache ([`cache`]),
//! so a warm run skips compile/emulate/encode entirely.
//!
//! ## Cache-key scheme
//!
//! A key is FNV-1a/128 over, in order: the engine schema version
//! ([`ENGINE_SCHEMA_VERSION`]), the artifact kind, the wire/codec
//! version the payload will be written with, the workload name, the
//! full workload source text, the compiler-options fingerprint and (for
//! images) the scheme name. Any input change — a `.tink` edit, a codec
//! change with its [`CODEC_VERSION`] bump, different `lego::Options` —
//! yields a different key, so entries are immutable and never
//! invalidated in place. See DESIGN.md §10.

pub mod cache;
pub mod pool;

use crate::Prepared;
use cache::{ArtifactCache, CacheKey, Lookup};
use ccc_core::schemes::base::encode_base;
use ccc_core::schemes::{
    base::BaseScheme, byte::ByteScheme, full::FullScheme, stream::StreamScheme,
    tailored::TailoredScheme, CompressError, Scheme,
};
use ccc_core::{CompressionReport, EncodedProgram, CODEC_VERSION};
use ccc_telemetry::{Clock, MonotonicClock, SharedSink, TraceEvent};
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tepic_isa::wire::{Fnv128, WireError};
use tepic_isa::{Program, PROGRAM_WIRE_VERSION};
use tinker_workloads::{Workload, WorkloadError};
use yula::{BlockTrace, Emulator, Limits, TRACE_WIRE_VERSION};

/// Version of the engine's key derivation itself plus everything the
/// wire versions do *not* capture (compiler and emulator behaviour).
/// Bump to invalidate every artifact at once.
pub const ENGINE_SCHEMA_VERSION: u32 = 1;

/// The scheme axis of the preparation matrix, in figure order.
pub const MATRIX_SCHEMES: [&str; 5] = ["byte", "stream", "stream_1", "full", "tailored"];

/// Instantiates a scheme by its figure name (including `base`).
pub fn scheme_by_name(name: &str) -> Option<Box<dyn Scheme>> {
    match name {
        "base" => Some(Box::new(BaseScheme)),
        "byte" => Some(Box::new(ByteScheme::default())),
        "full" => Some(Box::new(FullScheme::default())),
        "tailored" => Some(Box::new(TailoredScheme)),
        other => StreamScheme::named(other).map(|s| Box::new(s) as Box<dyn Scheme>),
    }
}

/// Why one workload failed to prepare.
#[derive(Debug)]
pub enum PrepareError {
    /// Compilation or emulation failed.
    Workload(WorkloadError),
    /// A scheme failed to encode the compiled program.
    Compress {
        /// Scheme name (`byte`, `full`, ...).
        scheme: String,
        /// The underlying codec failure.
        error: CompressError,
    },
}

impl fmt::Display for PrepareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrepareError::Workload(e) => write!(f, "{e}"),
            PrepareError::Compress { scheme, error } => write!(f, "{scheme}: {error}"),
        }
    }
}

impl std::error::Error for PrepareError {}

impl From<WorkloadError> for PrepareError {
    fn from(e: WorkloadError) -> Self {
        PrepareError::Workload(e)
    }
}

/// One workload's failure, named.
#[derive(Debug)]
pub struct WorkloadFailure {
    /// The workload that failed.
    pub workload: String,
    /// What went wrong.
    pub error: PrepareError,
}

/// Aggregated preparation failures — one entry per failed workload, so
/// a broken suite reports every casualty in one pass instead of
/// panicking at the first.
#[derive(Debug)]
pub struct PrepareErrors {
    /// Per-workload failures, in workload order.
    pub failures: Vec<WorkloadFailure>,
}

impl fmt::Display for PrepareErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} workload(s) failed to prepare:", self.failures.len())?;
        for fail in &self.failures {
            write!(f, "\n  {}: {}", fail.workload, fail.error)?;
        }
        Ok(())
    }
}

impl std::error::Error for PrepareErrors {}

/// Counter/timer snapshot of one engine's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineSnapshot {
    /// Cache hits for compiled programs.
    pub program_hits: u64,
    /// Cache misses (artifact rebuilt) for compiled programs.
    pub program_misses: u64,
    /// Cache hits for block traces.
    pub trace_hits: u64,
    /// Cache misses for block traces.
    pub trace_misses: u64,
    /// Cache hits for encoded images (the preparation matrix).
    pub image_hits: u64,
    /// Cache misses for encoded images.
    pub image_misses: u64,
    /// Cache hits for compression reports.
    pub report_hits: u64,
    /// Cache misses for compression reports.
    pub report_misses: u64,
    /// Entries found damaged (bad CRC/magic/decode) and rebuilt.
    pub corrupt_entries: u64,
    /// Wall-clock nanoseconds spent compiling (cold path only).
    pub compile_ns: u64,
    /// Wall-clock nanoseconds spent emulating (cold path only).
    pub emulate_ns: u64,
    /// Wall-clock nanoseconds spent encoding images (cold path only).
    pub encode_ns: u64,
    /// Wall-clock nanoseconds spent building reports (cold path only).
    pub report_ns: u64,
}

impl EngineSnapshot {
    /// Total cache hits across artifact kinds.
    pub fn hits(&self) -> u64 {
        self.program_hits + self.trace_hits + self.image_hits + self.report_hits
    }

    /// Total cache misses across artifact kinds.
    pub fn misses(&self) -> u64 {
        self.program_misses + self.trace_misses + self.image_misses + self.report_misses
    }

    /// Renders the per-stage wall clock and hit/miss table the bench
    /// driver prints.
    pub fn render(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        let mut out = String::new();
        out.push_str("engine: stage wall-clock (cold work only) and cache traffic\n");
        out.push_str(&format!(
            "  compile {:>9.1} ms   emulate {:>9.1} ms   encode {:>9.1} ms   report {:>9.1} ms\n",
            ms(self.compile_ns),
            ms(self.emulate_ns),
            ms(self.encode_ns),
            ms(self.report_ns),
        ));
        out.push_str(&format!(
            "  cache   program {}/{}   trace {}/{}   image {}/{}   report {}/{}   (hit/miss)\n",
            self.program_hits,
            self.program_misses,
            self.trace_hits,
            self.trace_misses,
            self.image_hits,
            self.image_misses,
            self.report_hits,
            self.report_misses,
        ));
        if self.corrupt_entries > 0 {
            out.push_str(&format!(
                "  corrupt entries detected and rebuilt: {}\n",
                self.corrupt_entries
            ));
        }
        out
    }

    /// Folds the snapshot into a metrics registry under `engine.*`, the
    /// same reporting path `tepic-cc` uses for fetch and fault metrics.
    pub fn record_metrics(&self, registry: &ccc_telemetry::MetricsRegistry) {
        let pairs: [(&str, u64); 13] = [
            ("engine.program_hits", self.program_hits),
            ("engine.program_misses", self.program_misses),
            ("engine.trace_hits", self.trace_hits),
            ("engine.trace_misses", self.trace_misses),
            ("engine.image_hits", self.image_hits),
            ("engine.image_misses", self.image_misses),
            ("engine.report_hits", self.report_hits),
            ("engine.report_misses", self.report_misses),
            ("engine.corrupt_entries", self.corrupt_entries),
            ("engine.compile_ns", self.compile_ns),
            ("engine.emulate_ns", self.emulate_ns),
            ("engine.encode_ns", self.encode_ns),
            ("engine.report_ns", self.report_ns),
        ];
        for (name, v) in pairs {
            registry.counter(name).add(v);
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    program_hits: AtomicU64,
    program_misses: AtomicU64,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
    image_hits: AtomicU64,
    image_misses: AtomicU64,
    report_hits: AtomicU64,
    report_misses: AtomicU64,
    corrupt_entries: AtomicU64,
    compile_ns: AtomicU64,
    emulate_ns: AtomicU64,
    encode_ns: AtomicU64,
    report_ns: AtomicU64,
}

#[derive(Clone, Copy)]
enum Kind {
    Program,
    Trace,
    Image,
    Report,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Program => "program",
            Kind::Trace => "trace",
            Kind::Image => "image",
            Kind::Report => "report",
        }
    }

    /// The pipeline-stage name used for span events (matches the
    /// [`EngineSnapshot`] timer the stage feeds).
    fn stage(self) -> &'static str {
        match self {
            Kind::Program => "compile",
            Kind::Trace => "emulate",
            Kind::Image => "encode",
            Kind::Report => "report",
        }
    }
}

/// Sensible worker count for this host.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The default on-disk cache location (under the build tree, so
/// `cargo clean` clears it).
pub fn default_cache_dir() -> PathBuf {
    PathBuf::from("target/ccc-artifacts")
}

/// The prepared-workload engine: a worker pool plus an optional
/// content-addressed artifact cache. Shared by reference across worker
/// threads; all counters are atomic.
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    cache: Option<ArtifactCache>,
    counters: Counters,
    clock: Arc<dyn Clock>,
    sink: Option<SharedSink>,
}

impl Engine {
    /// An engine with no on-disk cache — every artifact is rebuilt.
    pub fn uncached(jobs: usize) -> Engine {
        Engine {
            jobs: jobs.max(1),
            cache: None,
            counters: Counters::default(),
            clock: Arc::new(MonotonicClock::new()),
            sink: None,
        }
    }

    /// An engine caching under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the failure to create the cache directory.
    pub fn with_cache_dir(jobs: usize, dir: impl Into<PathBuf>) -> io::Result<Engine> {
        Ok(Engine {
            jobs: jobs.max(1),
            cache: Some(ArtifactCache::open(dir)?),
            counters: Counters::default(),
            clock: Arc::new(MonotonicClock::new()),
            sink: None,
        })
    }

    /// Replaces the clock the stage timers read. Tests inject a
    /// [`ccc_telemetry::FakeClock`] to make timer values deterministic.
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Engine {
        self.clock = clock;
        self
    }

    /// Attaches a span sink: every cold build and every cache probe is
    /// recorded as a [`TraceEvent::Span`] named after its pipeline stage
    /// (`compile`/`emulate`/`encode`/`report`, plus `cache-probe`).
    #[must_use]
    pub fn with_trace_sink(mut self, sink: SharedSink) -> Engine {
        self.sink = Some(sink);
        self
    }

    /// The attached span sink, if any.
    pub fn trace_sink(&self) -> Option<&SharedSink> {
        self.sink.as_ref()
    }

    /// An engine configured from the environment: `CCC_JOBS` (default:
    /// all cores), `CCC_NO_CACHE=1` to disable caching, `CCC_CACHE_DIR`
    /// to relocate it (default `target/ccc-artifacts`). If the cache
    /// directory cannot be created, the engine runs uncached and says so
    /// on stderr.
    pub fn from_env() -> Engine {
        let jobs = std::env::var("CCC_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(default_jobs);
        if std::env::var("CCC_NO_CACHE").is_ok_and(|v| v == "1") {
            return Engine::uncached(jobs);
        }
        let dir = std::env::var("CCC_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|_| default_cache_dir());
        match Engine::with_cache_dir(jobs, &dir) {
            Ok(e) => e,
            Err(err) => {
                eprintln!(
                    "warning: artifact cache unavailable at {}: {err}",
                    dir.display()
                );
                Engine::uncached(jobs)
            }
        }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether an on-disk cache is attached.
    pub fn is_cached(&self) -> bool {
        self.cache.is_some()
    }

    /// Snapshot of counters and stage timers.
    pub fn snapshot(&self) -> EngineSnapshot {
        let c = &self.counters;
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        EngineSnapshot {
            program_hits: g(&c.program_hits),
            program_misses: g(&c.program_misses),
            trace_hits: g(&c.trace_hits),
            trace_misses: g(&c.trace_misses),
            image_hits: g(&c.image_hits),
            image_misses: g(&c.image_misses),
            report_hits: g(&c.report_hits),
            report_misses: g(&c.report_misses),
            corrupt_entries: g(&c.corrupt_entries),
            compile_ns: g(&c.compile_ns),
            emulate_ns: g(&c.emulate_ns),
            encode_ns: g(&c.encode_ns),
            report_ns: g(&c.report_ns),
        }
    }

    fn bump(&self, kind: Kind, hit: bool) {
        let c = &self.counters;
        let ctr = match (kind, hit) {
            (Kind::Program, true) => &c.program_hits,
            (Kind::Program, false) => &c.program_misses,
            (Kind::Trace, true) => &c.trace_hits,
            (Kind::Trace, false) => &c.trace_misses,
            (Kind::Image, true) => &c.image_hits,
            (Kind::Image, false) => &c.image_misses,
            (Kind::Report, true) => &c.report_hits,
            (Kind::Report, false) => &c.report_misses,
        };
        ctr.fetch_add(1, Ordering::Relaxed);
    }

    fn timer_of(&self, kind: Kind) -> &AtomicU64 {
        match kind {
            Kind::Program => &self.counters.compile_ns,
            Kind::Trace => &self.counters.emulate_ns,
            Kind::Image => &self.counters.encode_ns,
            Kind::Report => &self.counters.report_ns,
        }
    }

    /// The shared cached-artifact path: probe, decode, else build, store.
    fn cached<T>(
        &self,
        kind: Kind,
        key: &CacheKey,
        decode: impl Fn(&[u8]) -> Result<T, WireError>,
        encode: impl Fn(&T) -> Vec<u8>,
        build: impl FnOnce() -> Result<T, PrepareError>,
    ) -> Result<T, PrepareError> {
        if let Some(cache) = &self.cache {
            // Only pay for clock reads on the probe when someone listens.
            let probe_start = self.sink.as_ref().map(|_| self.clock.now_ns());
            let looked = cache.load(key);
            if let (Some(sink), Some(start)) = (&self.sink, probe_start) {
                sink.record(TraceEvent::Span {
                    name: "cache-probe",
                    detail: format!("{}/{}", kind.name(), key.label),
                    start_ns: start,
                    dur_ns: self.clock.now_ns().saturating_sub(start),
                });
            }
            match looked {
                Lookup::Hit(payload) => match decode(&payload) {
                    Ok(v) => {
                        self.bump(kind, true);
                        return Ok(v);
                    }
                    Err(_) => {
                        // CRC passed but the payload does not parse:
                        // treat exactly like a damaged entry.
                        self.counters
                            .corrupt_entries
                            .fetch_add(1, Ordering::Relaxed);
                    }
                },
                Lookup::Corrupt => {
                    self.counters
                        .corrupt_entries
                        .fetch_add(1, Ordering::Relaxed);
                }
                Lookup::Miss => {}
            }
        }
        let start = self.clock.now_ns();
        let value = build()?;
        let dur = self.clock.now_ns().saturating_sub(start);
        self.timer_of(kind).fetch_add(dur, Ordering::Relaxed);
        self.bump(kind, false);
        if let Some(sink) = &self.sink {
            sink.record(TraceEvent::Span {
                name: kind.stage(),
                detail: key.label.clone(),
                start_ns: start,
                dur_ns: dur,
            });
        }
        if let Some(cache) = &self.cache {
            // A failed store is not fatal — the artifact is in memory.
            let _ = cache.store(key, &encode(&value));
        }
        Ok(value)
    }

    fn key(&self, kind: Kind, label: String, parts: &dyn Fn(&mut Fnv128)) -> CacheKey {
        let mut h = Fnv128::new();
        h.update_u32(ENGINE_SCHEMA_VERSION);
        h.update_str(kind.name());
        parts(&mut h);
        CacheKey::new(kind.name(), label, &h)
    }

    fn source_parts(h: &mut Fnv128, name: &str, source: &str, opts: &lego::Options) {
        h.update_str(name);
        h.update_str(source);
        h.update_str(&options_fingerprint(opts));
    }

    /// The compiled program for `source` (cached).
    ///
    /// # Errors
    ///
    /// [`PrepareError::Workload`] on compile failure.
    pub fn program(
        &self,
        name: &str,
        source: &str,
        opts: &lego::Options,
    ) -> Result<Program, PrepareError> {
        let key = self.key(Kind::Program, name.to_string(), &|h| {
            h.update_u32(PROGRAM_WIRE_VERSION);
            Self::source_parts(h, name, source, opts);
        });
        self.cached(
            Kind::Program,
            &key,
            tepic_isa::program_from_bytes,
            tepic_isa::program_to_bytes,
            || {
                lego::compile(source, opts)
                    .map_err(|e| PrepareError::Workload(WorkloadError::Compile(e)))
            },
        )
    }

    /// The dynamic block trace of `program` (cached). `program` must be
    /// the artifact [`Engine::program`] returns for the same inputs.
    ///
    /// # Errors
    ///
    /// [`PrepareError::Workload`] on emulation failure.
    pub fn trace(
        &self,
        name: &str,
        source: &str,
        opts: &lego::Options,
        program: &Program,
    ) -> Result<BlockTrace, PrepareError> {
        let key = self.key(Kind::Trace, name.to_string(), &|h| {
            h.update_u32(TRACE_WIRE_VERSION);
            Self::source_parts(h, name, source, opts);
        });
        self.cached(
            Kind::Trace,
            &key,
            BlockTrace::from_wire_bytes,
            BlockTrace::to_wire_bytes,
            || {
                Emulator::new(program)
                    .run(&Limits::default())
                    .map(|r| r.trace)
                    .map_err(|e| PrepareError::Workload(WorkloadError::Run(e)))
            },
        )
    }

    /// The encoded image of `program` under `scheme` (cached) — one cell
    /// of the preparation matrix.
    ///
    /// # Errors
    ///
    /// [`PrepareError::Compress`] when the scheme rejects the program;
    /// also if `scheme` names no known scheme.
    pub fn image(
        &self,
        name: &str,
        source: &str,
        opts: &lego::Options,
        scheme: &str,
        program: &Program,
    ) -> Result<EncodedProgram, PrepareError> {
        let key = self.key(Kind::Image, format!("{name}-{scheme}"), &|h| {
            h.update_u32(CODEC_VERSION);
            Self::source_parts(h, name, source, opts);
            h.update_str(scheme);
        });
        self.cached(
            Kind::Image,
            &key,
            ccc_core::encoded_from_bytes,
            ccc_core::encoded_to_bytes,
            || {
                let s = scheme_by_name(scheme).ok_or_else(|| PrepareError::Compress {
                    scheme: scheme.to_string(),
                    error: CompressError::Integrity {
                        detail: "unknown scheme name",
                    },
                })?;
                s.compress(program)
                    .map(|out| out.image)
                    .map_err(|error| PrepareError::Compress {
                        scheme: scheme.to_string(),
                        error,
                    })
            },
        )
    }

    /// The full cross-scheme [`CompressionReport`] for `program`
    /// (cached) — the data behind Figures 5, 7 and 10.
    pub fn report(
        &self,
        name: &str,
        source: &str,
        opts: &lego::Options,
        program: &Program,
    ) -> CompressionReport {
        let key = self.key(Kind::Report, name.to_string(), &|h| {
            h.update_u32(CODEC_VERSION);
            Self::source_parts(h, name, source, opts);
        });
        self.cached(
            Kind::Report,
            &key,
            ccc_core::report_from_bytes,
            ccc_core::report_to_bytes,
            || Ok(CompressionReport::build(name, program)),
        )
        .expect("report build is infallible")
    }

    /// Prepares `list` in parallel: compile + trace per workload, then
    /// the workload x scheme image matrix, all through the cache.
    ///
    /// # Errors
    ///
    /// [`PrepareErrors`] aggregating every failed workload (the paper
    /// harness cannot proceed on partial data, but it *can* report all
    /// casualties at once instead of panicking at the first).
    pub fn prepare(&self, list: &[&'static Workload]) -> Result<Vec<Prepared>, PrepareErrors> {
        let opts = lego::Options::default();

        // Stage 1: compile + trace, one task per workload.
        let stage1 = pool::run_tasks(
            self.jobs,
            list.iter()
                .map(|w| {
                    let opts = &opts;
                    move || -> Result<(Program, BlockTrace), PrepareError> {
                        let program = self.program(w.name, w.source(), opts)?;
                        let trace = self.trace(w.name, w.source(), opts, &program)?;
                        Ok((program, trace))
                    }
                })
                .collect(),
        );

        // Stage 2: the image matrix over every workload that compiled.
        let mut matrix_tasks: Vec<(usize, &'static str, &Program, &'static Workload)> = Vec::new();
        for (wi, (w, r)) in list.iter().zip(&stage1).enumerate() {
            if let Ok((program, _)) = r {
                for scheme in MATRIX_SCHEMES {
                    matrix_tasks.push((wi, scheme, program, w));
                }
            }
        }
        let images = pool::run_tasks(
            self.jobs,
            matrix_tasks
                .iter()
                .map(|&(_, scheme, program, w)| {
                    let opts = &opts;
                    move || self.image(w.name, w.source(), opts, scheme, program)
                })
                .collect(),
        );

        // Aggregate: pair matrix results back to workloads, keeping the
        // first error per workload (stage-1 errors already won above).
        let mut per_workload: Vec<Result<Vec<EncodedProgram>, PrepareError>> =
            list.iter().map(|_| Ok(Vec::new())).collect();
        for (&(wi, _, _, _), img) in matrix_tasks.iter().zip(images) {
            match (&mut per_workload[wi], img) {
                (Ok(v), Ok(img)) => v.push(img),
                (slot @ Ok(_), Err(e)) => *slot = Err(e),
                (Err(_), _) => {}
            }
        }

        let mut prepared = Vec::new();
        let mut failures = Vec::new();
        for ((w, stage1), images) in list.iter().zip(stage1).zip(per_workload) {
            match (stage1, images) {
                (Ok((program, trace)), Ok(images)) => {
                    let [byte_img, stream_img, stream1_img, compressed_img, tailored_img]: [EncodedProgram;
                        5] = images.try_into().expect("five matrix schemes");
                    let base_img = encode_base(&program);
                    prepared.push(Prepared {
                        workload: w,
                        program,
                        trace,
                        base_img,
                        byte_img,
                        stream_img,
                        stream1_img,
                        compressed_img,
                        tailored_img,
                    });
                }
                (Err(error), _) | (Ok(_), Err(error)) => failures.push(WorkloadFailure {
                    workload: w.name.to_string(),
                    error,
                }),
            }
        }
        if failures.is_empty() {
            Ok(prepared)
        } else {
            Err(PrepareErrors { failures })
        }
    }

    /// Prepares the whole benchmark suite ([`tinker_workloads::ALL`]).
    ///
    /// # Errors
    ///
    /// As [`Engine::prepare`].
    pub fn prepare_all(&self) -> Result<Vec<Prepared>, PrepareErrors> {
        let list: Vec<&'static Workload> = tinker_workloads::ALL.iter().collect();
        self.prepare(&list)
    }

    /// Builds (cached, in parallel) the per-workload compression reports
    /// for already-prepared workloads.
    pub fn reports(&self, prepared: &[Prepared]) -> Vec<CompressionReport> {
        let opts = lego::Options::default();
        pool::run_tasks(
            self.jobs,
            prepared
                .iter()
                .map(|p| {
                    let opts = &opts;
                    move || self.report(p.workload.name, p.workload.source(), opts, &p.program)
                })
                .collect(),
        )
    }
}

/// Stable textual fingerprint of the compiler options that affect
/// generated code (part of every cache key).
fn options_fingerprint(o: &lego::Options) -> String {
    format!(
        "optimize={};opt_iters={};data_base={:#x};tail_duplicate={:?}",
        o.optimize, o.opt_iters, o.data_base, o.tail_duplicate
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &Workload = &Workload::custom(
        "engine-good",
        "tiny valid workload",
        "fn main() { var i; for (i = 0; i < 40; i = i + 1) { print(i * i); } }",
    );
    const ALSO_GOOD: &Workload = &Workload::custom(
        "engine-good-2",
        "another tiny valid workload",
        "fn main() { var i; var s = 0; for (i = 0; i < 30; i = i + 1) { s = s + i; } print(s); }",
    );
    const BAD: &Workload = &Workload::custom(
        "engine-bad",
        "does not even parse",
        "fn main( { this is not tink ",
    );

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ccc-engine-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn failures_are_aggregated_per_workload_not_panicked() {
        let eng = Engine::uncached(2);
        let err = eng
            .prepare(&[GOOD, BAD, ALSO_GOOD])
            .expect_err("bad workload must fail the batch");
        assert_eq!(err.failures.len(), 1, "only the bad workload fails");
        assert_eq!(err.failures[0].workload, "engine-bad");
        assert!(matches!(
            err.failures[0].error,
            PrepareError::Workload(WorkloadError::Compile(_))
        ));
        let msg = err.to_string();
        assert!(
            msg.contains("engine-bad"),
            "message names the workload: {msg}"
        );
    }

    #[test]
    fn good_workloads_prepare_fully() {
        let eng = Engine::uncached(4);
        let prepared = eng.prepare(&[GOOD]).unwrap();
        assert_eq!(prepared.len(), 1);
        let p = &prepared[0];
        assert!(p.program.num_ops() > 0);
        assert!(!p.trace.is_empty());
        for (name, img) in p.images() {
            assert!(img.check_layout(), "{name} layout");
            assert!(img.total_bytes() > 0, "{name} empty");
        }
        let snap = eng.snapshot();
        assert_eq!(snap.hits(), 0, "uncached engine never hits");
        assert_eq!(snap.image_misses, MATRIX_SCHEMES.len() as u64);
    }

    #[test]
    fn warm_run_serves_every_artifact_from_cache() {
        let dir = scratch("warm");
        let _ = std::fs::remove_dir_all(&dir);
        let cold = Engine::with_cache_dir(2, &dir).unwrap();
        let a = cold.prepare(&[GOOD]).unwrap();
        let snap = cold.snapshot();
        assert_eq!(snap.misses(), 2 + MATRIX_SCHEMES.len() as u64);
        assert_eq!(snap.hits(), 0);

        let warm = Engine::with_cache_dir(2, &dir).unwrap();
        let b = warm.prepare(&[GOOD]).unwrap();
        let snap = warm.snapshot();
        assert_eq!(snap.misses(), 0, "warm run must rebuild nothing");
        assert_eq!(snap.hits(), 2 + MATRIX_SCHEMES.len() as u64);

        assert_eq!(a[0].program, b[0].program);
        assert_eq!(a[0].trace, b[0].trace);
        for ((na, ia), (nb, ib)) in a[0].images().zip(b[0].images()) {
            assert_eq!(na, nb);
            assert_eq!(ia, ib, "{na}: warm image differs from cold");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fake_clock_makes_stage_timers_deterministic() {
        use ccc_telemetry::FakeClock;
        // jobs=1 serializes the builds; each cold build brackets exactly
        // two clock reads, so every stage timer is an exact multiple of
        // the fake clock's step.
        const STEP: u64 = 1_000;
        let eng = Engine::uncached(1).with_clock(Arc::new(FakeClock::with_step(STEP)));
        eng.prepare(&[GOOD]).unwrap();
        let snap = eng.snapshot();
        assert_eq!(snap.compile_ns, STEP, "one compile build");
        assert_eq!(snap.emulate_ns, STEP, "one emulate build");
        assert_eq!(
            snap.encode_ns,
            STEP * MATRIX_SCHEMES.len() as u64,
            "one encode build per matrix scheme"
        );
        assert_eq!(snap.report_ns, 0, "no report requested");
    }

    #[test]
    fn sink_records_one_span_per_cold_build_and_probe() {
        use ccc_telemetry::{SharedSink, TraceEvent};
        let dir = scratch("spans");
        let _ = std::fs::remove_dir_all(&dir);
        let sink = SharedSink::new(1 << 12);
        let eng = Engine::with_cache_dir(2, &dir)
            .unwrap()
            .with_trace_sink(sink.clone());
        eng.prepare(&[GOOD]).unwrap();
        let events = eng.trace_sink().unwrap().drain();
        let count = |stage: &str| {
            events
                .iter()
                .filter(|e| matches!(e, TraceEvent::Span { name, .. } if *name == stage))
                .count() as u64
        };
        assert_eq!(count("compile"), 1);
        assert_eq!(count("emulate"), 1);
        assert_eq!(count("encode"), MATRIX_SCHEMES.len() as u64);
        assert_eq!(
            count("cache-probe"),
            2 + MATRIX_SCHEMES.len() as u64,
            "every cached() call probes once"
        );
        // Span durations come from a monotonic clock.
        for e in &events {
            if let TraceEvent::Span { name, detail, .. } = e {
                assert!(!detail.is_empty(), "span {name} has an empty detail");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scheme_registry_matches_matrix() {
        for s in MATRIX_SCHEMES {
            assert!(scheme_by_name(s).is_some(), "{s} missing");
        }
        assert!(scheme_by_name("base").is_some());
        assert!(scheme_by_name("no-such-scheme").is_none());
    }
}
