//! The content-addressed on-disk artifact cache.
//!
//! Every prepared artifact — compiled [`Program`]s, dynamic
//! [`BlockTrace`]s, encoded images, compression reports — is stored as
//! one file whose *name* is derived from a stable 128-bit content key
//! over everything the artifact depends on (workload source, compiler
//! options, scheme, codec/wire versions; see [`CacheKey`]). Warm runs
//! look the key up and skip the compile/emulate/encode pipeline
//! entirely; any input change produces a different key, so entries are
//! immutable and never need invalidation logic.
//!
//! ## Entry file format
//!
//! ```text
//! [0..4)   magic  "CCA1"
//! [4..8)   crc32 of the payload (IEEE, as ccc_core::integrity::crc32)
//! [8..16)  payload length, u64 LE
//! [16.. )  payload (artifact wire bytes)
//! ```
//!
//! A bad magic, length or CRC classifies the entry as **corrupt**: the
//! reader reports it, and the engine *quarantines* the damaged file
//! (moved to `<dir>/quarantine/` under its original key-derived name,
//! never silently deleted) before rebuilding. An I/O error mid-read is
//! classified as **transient** instead — the engine retries those with
//! backoff before degrading to a rebuild. Writes go through a unique
//! temp file followed by an atomic rename, so readers never observe a
//! half-written entry.
//!
//! Every disk touch is threaded through a [`Failpoints`] registry
//! (sites `cache.read`, `cache.write`, `cache.rename`; DESIGN.md §13),
//! so the chaos harness can inject torn reads, failed writes and
//! corrupt payloads deterministically. The default registry is
//! inactive and costs one atomic load per operation.
//!
//! [`Program`]: tepic_isa::Program
//! [`BlockTrace`]: yula::BlockTrace

use ccc_core::failpoint::{sites, FailMode, Failpoints};
use ccc_core::integrity::crc32;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tepic_isa::wire::Fnv128;

/// Magic prefix of every cache entry file.
const MAGIC: [u8; 4] = *b"CCA1";

/// Header bytes before the payload: magic + crc32 + length.
const HEADER_BYTES: usize = 16;

/// Identity of one artifact: a kind, a human-readable label (for the
/// file name only — *not* part of the key) and the 128-bit content hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    /// Artifact kind (`program`, `trace`, `image`, `report`).
    pub kind: &'static str,
    /// Debuggable label, e.g. `compress-full`. Sanitized into the file
    /// name so a directory listing reads as an inventory.
    pub label: String,
    /// Content hash over every input the artifact depends on.
    pub hash: u128,
}

impl CacheKey {
    /// Builds a key from a kind, label and a finished hasher.
    pub fn new(kind: &'static str, label: impl Into<String>, hash: &Fnv128) -> CacheKey {
        CacheKey {
            kind,
            label: label.into(),
            hash: hash.finish(),
        }
    }

    /// The entry's file name: `<kind>-<label>-<hash32hex>.art`.
    pub fn file_name(&self) -> String {
        let label: String = self
            .label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                    c
                } else {
                    '-'
                }
            })
            .collect();
        format!("{}-{}-{:032x}.art", self.kind, label, self.hash)
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{} [{:032x}]", self.kind, self.label, self.hash)
    }
}

/// Outcome of a cache probe.
#[derive(Debug)]
pub enum Lookup {
    /// The entry exists and its payload passed the integrity checks.
    Hit(Vec<u8>),
    /// No entry under this key.
    Miss,
    /// An entry exists but is damaged (bad magic/length/CRC). The
    /// engine quarantines the file and rebuilds.
    Corrupt,
    /// The probe hit a (possibly transient) I/O error mid-read. The
    /// engine retries with backoff, then degrades to a rebuild.
    Transient,
}

/// Name of the quarantine subdirectory under the cache root.
pub const QUARANTINE_DIR: &str = "quarantine";

/// A directory of content-addressed artifact files.
#[derive(Debug, Clone)]
pub struct ArtifactCache {
    dir: PathBuf,
    failpoints: Arc<Failpoints>,
}

impl ArtifactCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates the `create_dir_all` failure.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ArtifactCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(ArtifactCache {
            dir,
            failpoints: Arc::new(Failpoints::disabled()),
        })
    }

    /// Replaces the failpoint registry consulted on every disk touch.
    #[must_use]
    pub fn with_failpoints(mut self, failpoints: Arc<Failpoints>) -> ArtifactCache {
        self.failpoints = failpoints;
        self
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The quarantine directory damaged entries are moved into.
    pub fn quarantine_dir(&self) -> PathBuf {
        self.dir.join(QUARANTINE_DIR)
    }

    fn path_of(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Probes the cache for `key`.
    pub fn load(&self, key: &CacheKey) -> Lookup {
        let path = self.path_of(key);
        let raw = match fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Lookup::Miss,
            Err(_) => return Lookup::Transient,
        };
        // The injection point sits after the successful read: only an
        // entry that exists can be torn or misread, and a fault here is
        // indistinguishable from real disk trouble to the caller.
        match self.failpoints.check(sites::CACHE_READ) {
            Some(FailMode::Corrupt) => return Lookup::Corrupt,
            Some(_) => return Lookup::Transient,
            None => {}
        }
        if raw.len() < HEADER_BYTES || raw[..4] != MAGIC {
            return Lookup::Corrupt;
        }
        let stored_crc = u32::from_le_bytes(raw[4..8].try_into().expect("4 bytes"));
        let len = u64::from_le_bytes(raw[8..16].try_into().expect("8 bytes"));
        let payload = &raw[HEADER_BYTES..];
        if payload.len() as u64 != len || crc32(payload) != stored_crc {
            return Lookup::Corrupt;
        }
        Lookup::Hit(payload.to_vec())
    }

    /// Moves the entry under `key` into the quarantine directory,
    /// preserving the key-derived file name (kind, label and content
    /// hash stay readable in a directory listing). Never deletes data:
    /// a quarantined file is evidence for post-mortems, not garbage.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures (including the entry not
    /// existing); the engine treats those as non-fatal.
    pub fn quarantine(&self, key: &CacheKey) -> io::Result<PathBuf> {
        let qdir = self.quarantine_dir();
        fs::create_dir_all(&qdir)?;
        let dest = qdir.join(key.file_name());
        fs::rename(self.path_of(key), &dest)?;
        Ok(dest)
    }

    /// Stores `payload` under `key` (overwriting any existing entry)
    /// via a temp-file write and atomic rename.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; the engine retries with backoff
    /// and ultimately treats a failed store as non-fatal (the artifact
    /// is already in memory).
    pub fn store(&self, key: &CacheKey, payload: &[u8]) -> io::Result<()> {
        let path = self.path_of(key);
        let tmp = self
            .dir
            .join(format!(".{}.tmp-{}", key.file_name(), std::process::id()));
        let mut raw = Vec::with_capacity(HEADER_BYTES + payload.len());
        raw.extend_from_slice(&MAGIC);
        raw.extend_from_slice(&crc32(payload).to_le_bytes());
        raw.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        raw.extend_from_slice(payload);
        match self.failpoints.check(sites::CACHE_WRITE) {
            Some(FailMode::Corrupt) => {
                // A torn write: the entry lands on disk with a damaged
                // payload byte, for a later read to detect and
                // quarantine. The store itself "succeeds".
                let last = raw.len() - 1;
                raw[last] ^= 0xff;
            }
            Some(_) => return Err(io::Error::other("injected failpoint: cache.write")),
            None => {}
        }
        fs::write(&tmp, &raw)?;
        if self.failpoints.check(sites::CACHE_RENAME).is_some() {
            let _ = fs::remove_file(&tmp);
            return Err(io::Error::other("injected failpoint: cache.rename"));
        }
        match fs::rename(&tmp, &path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e)
            }
        }
    }
}

/// Writes `bytes` to `path` through a unique temp file and an atomic
/// rename — the same discipline [`ArtifactCache::store`] uses for cache
/// entries, exposed for results files (`results/METRICS_*.json`,
/// reports, trace exports): a reader or an interrupted run can never
/// observe a torn file, only the old content or the new.
///
/// Creates the parent directory if missing. The temp file lives in the
/// target's directory so the rename stays on one filesystem.
///
/// # Errors
///
/// Propagates filesystem failures; the temp file is cleaned up when
/// the rename fails.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let path = path.as_ref();
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            fs::create_dir_all(p)?;
            p
        }
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::other("write_atomic: path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp-{}",
        name.to_string_lossy(),
        std::process::id()
    ));
    fs::write(&tmp, bytes)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ccc-cache-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn write_atomic_creates_dirs_replaces_content_and_leaves_no_temp() {
        let dir = scratch("write-atomic");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.json");
        write_atomic(&path, b"{\"v\":1}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":1}");
        write_atomic(&path, b"{\"v\":2}").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"{\"v\":2}");
        let leftovers: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(leftovers.len(), 1, "no temp files remain: {leftovers:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    fn key(label: &str) -> CacheKey {
        let mut h = Fnv128::new();
        h.update_str(label);
        CacheKey::new("image", label, &h)
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = scratch("roundtrip");
        let cache = ArtifactCache::open(&dir).unwrap();
        let k = key("compress-full");
        assert!(matches!(cache.load(&k), Lookup::Miss));
        cache.store(&k, b"payload bytes").unwrap();
        match cache.load(&k) {
            Lookup::Hit(p) => assert_eq!(p, b"payload bytes"),
            other => panic!("expected hit, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_is_detected_not_served() {
        let dir = scratch("corrupt");
        let cache = ArtifactCache::open(&dir).unwrap();
        let k = key("go-tailored");
        cache.store(&k, b"some artifact payload").unwrap();
        let path = dir.join(k.file_name());

        // Flip a payload byte: CRC must catch it.
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xff;
        fs::write(&path, &raw).unwrap();
        assert!(matches!(cache.load(&k), Lookup::Corrupt));

        // Truncate mid-payload: length check must catch it.
        raw.truncate(raw.len() - 3);
        fs::write(&path, &raw).unwrap();
        assert!(matches!(cache.load(&k), Lookup::Corrupt));

        // Wreck the magic.
        fs::write(&path, b"XXXX").unwrap();
        assert!(matches!(cache.load(&k), Lookup::Corrupt));

        // A rebuild overwrites the damaged entry.
        cache.store(&k, b"fresh").unwrap();
        assert!(matches!(cache.load(&k), Lookup::Hit(p) if p == b"fresh"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn distinct_keys_distinct_files() {
        let a = key("compress-full");
        let b = key("compress-byte");
        assert_ne!(a.file_name(), b.file_name());
        let odd = CacheKey::new("report", "weird name/with:stuff", &Fnv128::new());
        assert!(!odd.file_name().contains('/'));
        assert!(!odd.file_name().contains(':'));
    }
}
