//! A minimal work-stealing executor on scoped OS threads.
//!
//! The preparation matrix (8 workloads x 5 schemes, plus the
//! compile/trace stage feeding it) is an embarrassingly parallel batch
//! of uneven tasks: compiling `gcc` costs many times a `fig05` encode.
//! Static partitioning would leave workers idle behind the long pole, so
//! each worker owns a deque seeded round-robin and steals from the tail
//! of its neighbours when it runs dry.
//!
//! No crates.io dependencies (the build is offline — see DESIGN.md §6):
//! the deques are `Mutex<VecDeque<usize>>`, which for task counts in the
//! tens is contention-free in practice. Results are returned in task
//! order regardless of execution interleaving, so parallel runs are
//! bit-identical to `jobs = 1` runs as long as the tasks themselves are
//! pure — which the determinism suite asserts end to end.
//!
//! Two entry points share the executor: [`run_tasks`] propagates the
//! first panicking task's payload (the historical behaviour, right for
//! harness bugs), while [`run_tasks_isolated`] catches each task's
//! panic individually — a poisoned job becomes an `Err(JobPanic)` slot
//! in the result vector and every *worker thread survives*, which is
//! what a long-running service needs from a batch with one bad element
//! (DESIGN.md §13).

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

thread_local! {
    /// The causal span the *current* task runs under (0 = none). Set by
    /// [`with_span`] around a task body; producers inside the task
    /// (e.g. the engine's `cached` stage spans) read it with
    /// [`current_span`] to parent their spans. The value travels with
    /// the task closure, not the worker thread: whichever thread steals
    /// the job installs the context before running it and restores the
    /// previous value after, so parentage survives work-stealing.
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
}

/// The span id the running task was scheduled under, 0 when none.
pub fn current_span() -> u64 {
    CURRENT_SPAN.with(Cell::get)
}

/// Runs `f` with `id` installed as the current span context, restoring
/// the previous context afterwards — including on panic, so an isolated
/// job failure can't leak its span onto the worker's next task.
pub fn with_span<R>(id: u64, f: impl FnOnce() -> R) -> R {
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_SPAN.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(CURRENT_SPAN.with(|c| c.replace(id)));
    f()
}

/// A task panicked inside [`run_tasks_isolated`]: the payload,
/// stringified, with the task's batch index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanic {
    /// Index of the task in the submitted batch.
    pub task_index: usize,
    /// The panic payload rendered to text (`&str`/`String` payloads are
    /// preserved verbatim; anything else becomes a placeholder).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task {} panicked: {}", self.task_index, self.message)
    }
}

impl std::error::Error for JobPanic {}

/// Renders a caught panic payload as text.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// [`run_tasks`] with per-task panic isolation: a panicking task yields
/// `Err(JobPanic)` in its result slot instead of tearing down the pool.
/// Worker threads always survive; result order is task order.
pub fn run_tasks_isolated<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<Result<T, JobPanic>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let wrapped: Vec<_> = tasks
        .into_iter()
        .enumerate()
        .map(|(i, task)| {
            move || {
                catch_unwind(AssertUnwindSafe(task)).map_err(|payload| JobPanic {
                    task_index: i,
                    message: panic_message(payload.as_ref()),
                })
            }
        })
        .collect();
    run_tasks(jobs, wrapped)
}

/// Runs every task, using up to `jobs` worker threads, and returns the
/// results in task order.
///
/// `jobs` is clamped to `1..=tasks.len()`; `jobs <= 1` runs inline on
/// the caller's thread with no locking at all (the reference serial
/// schedule).
///
/// # Panics
///
/// Propagates the first panicking task's payload after all workers have
/// stopped (via [`std::thread::scope`]).
pub fn run_tasks<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n);
    if jobs == 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }

    // Task slots (taken exactly once, guarded by deque ownership of the
    // index), per-worker deques, and order-preserving result slots.
    let slots: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, d) in (0..n).map(|i| (i, i % jobs)) {
        deques[d].lock().expect("seeding").push_back(i);
    }

    std::thread::scope(|scope| {
        for me in 0..jobs {
            let slots = &slots;
            let results = &results;
            let deques = &deques;
            scope.spawn(move || loop {
                // Own work first (front), then steal from a victim's tail.
                let mut found = deques[me].lock().expect("own deque").pop_front();
                if found.is_none() {
                    for k in 1..jobs {
                        let victim = (me + k) % jobs;
                        if let Some(i) = deques[victim].lock().expect("victim deque").pop_back() {
                            found = Some(i);
                            break;
                        }
                    }
                }
                let Some(i) = found else { break };
                let task = slots[i]
                    .lock()
                    .expect("task slot")
                    .take()
                    .expect("task ran twice");
                let out = task();
                *results[i].lock().expect("result slot") = Some(out);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock")
                .expect("task completed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_task_order() {
        for jobs in [1, 2, 4, 8] {
            let tasks: Vec<_> = (0..37).map(|i| move || i * 3).collect();
            let out = run_tasks(jobs, tasks);
            assert_eq!(
                out,
                (0..37).map(|i| i * 3).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn runs_every_task_exactly_once() {
        static HITS: AtomicUsize = AtomicUsize::new(0);
        HITS.store(0, Ordering::SeqCst);
        let tasks: Vec<_> = (0..100)
            .map(|i| {
                move || {
                    HITS.fetch_add(1, Ordering::SeqCst);
                    i
                }
            })
            .collect();
        let out = run_tasks(8, tasks);
        assert_eq!(HITS.load(Ordering::SeqCst), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn uneven_tasks_complete() {
        // Front-loads one long task so other workers must steal the rest.
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..16)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = if i == 0 {
                    Box::new(|| (0..2_000_000u64).fold(0u64, |a, b| a ^ b) as usize)
                } else {
                    Box::new(move || i)
                };
                f
            })
            .collect();
        let out = run_tasks(4, tasks);
        assert_eq!(out[1..], (1..16).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn empty_and_oversubscribed() {
        let none: Vec<fn() -> u32> = Vec::new();
        assert!(run_tasks(8, none).is_empty());
        let out = run_tasks(64, vec![|| 1u32, || 2u32]);
        assert_eq!(out, vec![1, 2]);
    }

    /// Runs `f` with the default panic hook silenced, so tests that
    /// deliberately panic inside workers do not spam the test output.
    fn quiet_panics<R>(f: impl FnOnce() -> R) -> R {
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = f();
        std::panic::set_hook(hook);
        r
    }

    #[test]
    fn isolated_pool_survives_poisoned_jobs() {
        let out = quiet_panics(|| {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..24)
                .map(|i| {
                    let f: Box<dyn FnOnce() -> usize + Send> = if i % 5 == 0 {
                        Box::new(move || panic!("poisoned job {i}"))
                    } else {
                        Box::new(move || i * 2)
                    };
                    f
                })
                .collect();
            run_tasks_isolated(4, tasks)
        });
        assert_eq!(out.len(), 24, "every slot reports, poisoned or not");
        for (i, r) in out.iter().enumerate() {
            if i % 5 == 0 {
                let p = r.as_ref().expect_err("poisoned slot");
                assert_eq!(p.task_index, i);
                assert_eq!(p.message, format!("poisoned job {i}"));
            } else {
                assert_eq!(*r.as_ref().expect("healthy slot"), i * 2);
            }
        }
    }

    #[test]
    fn isolated_pool_serial_path_catches_too() {
        let out = quiet_panics(|| {
            run_tasks_isolated(
                1,
                vec![
                    Box::new(|| 1usize) as Box<dyn FnOnce() -> usize + Send>,
                    Box::new(|| panic!("{}", String::from("owned payload"))),
                ],
            )
        });
        assert_eq!(*out[0].as_ref().unwrap(), 1);
        assert_eq!(out[1].as_ref().unwrap_err().message, "owned payload");
    }

    #[test]
    fn span_context_travels_with_the_task_not_the_thread() {
        // Each task is wrapped with its own span id at submission time;
        // whatever thread steals it must observe that id inside, and a
        // worker's context must be clean between tasks.
        let tasks: Vec<_> = (1..=64u64)
            .map(|id| move || with_span(id, || (id, current_span())))
            .collect();
        for (expected, (id, seen)) in (1..=64u64).zip(run_tasks(8, tasks)) {
            assert_eq!(id, expected);
            assert_eq!(seen, expected, "task {expected} saw a foreign span");
        }
        assert_eq!(current_span(), 0, "caller context untouched");
    }

    #[test]
    fn span_context_nests_and_restores() {
        assert_eq!(current_span(), 0);
        let inner = with_span(5, || {
            assert_eq!(current_span(), 5);
            with_span(9, current_span)
        });
        assert_eq!(inner, 9);
        assert_eq!(current_span(), 0);
    }

    #[test]
    fn span_context_is_restored_after_a_panicking_task() {
        let out = quiet_panics(|| {
            run_tasks_isolated(
                1,
                vec![
                    Box::new(|| with_span(7, || -> u64 { panic!("boom") }))
                        as Box<dyn FnOnce() -> u64 + Send>,
                    Box::new(current_span),
                ],
            )
        });
        assert!(out[0].is_err());
        assert_eq!(
            *out[1].as_ref().unwrap(),
            0,
            "panic must not leak the span onto the next task"
        );
    }

    #[test]
    fn tasks_may_borrow_caller_state() {
        let data: Vec<u64> = (0..50).collect();
        let tasks: Vec<_> = data
            .chunks(7)
            .map(|c| move || c.iter().sum::<u64>())
            .collect();
        let sums = run_tasks(3, tasks);
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }
}
