//! Run-ledger glue and the regression sentinel.
//!
//! Record construction: every `tepic-cc` subcommand and bench binary
//! calls [`engine_record`] / [`base_record`] at exit and hands the
//! result to [`append_best_effort`], which honors `CCC_LEDGER` /
//! `CCC_NO_LEDGER` and never fails the run over a ledger problem.
//!
//! Sentinel statistics (`tepic-cc perf --check`): records are grouped
//! by ([`Fingerprint::key`], subcommand) — numbers are only comparable
//! on the same host/build running the same thing — and within each
//! group the *latest* record is judged against all earlier ones,
//! per named sample:
//!
//! * **minimum-sample floor** (the `bench_best` idea: the best of N
//!   runs is the noise floor): the latest value must not be worse than
//!   the baseline *best* by more than the configured band;
//! * **median/MAD change detector**: the latest value must also sit
//!   beyond `max(3·MAD, 5% of median)` on the bad side of the baseline
//!   median — a wide band alone would flag honest noise on tight
//!   baselines, and MAD alone collapses when the baseline has little
//!   spread.
//!
//! Both must trip to call a regression. Direction comes from the sample
//! name (see [`direction_of`]); names with an unknown suffix are not
//! judged. Groups with fewer than `min_samples` baseline records pass
//! with an [`SentinelStatus::InsufficientHistory`] note.

use crate::engine::Engine;
use ccc_telemetry::ledger::{self, Fingerprint, LedgerRecord};
use ccc_telemetry::spans::StageRollup;
use ccc_telemetry::MetricsRegistry;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// The `--features` half of the ledger fingerprint for this build of
/// the bench crate. Root-crate features propagate here, so this agrees
/// with what the CLI reports.
pub fn build_features() -> &'static str {
    if cfg!(feature = "simd") {
        "simd"
    } else {
        ""
    }
}

/// A record with fingerprint, seed and wall-clock but no engine data.
pub fn base_record(
    subcommand: &str,
    seed: u64,
    features: &str,
    lut_bits: u64,
    wall_ns: u64,
) -> LedgerRecord {
    let mut rec = LedgerRecord::new(subcommand, Fingerprint::current(features, lut_bits));
    rec.seed = seed;
    rec.wall_ns = wall_ns;
    rec.samples.insert("wall_ns".to_string(), wall_ns as f64);
    rec
}

/// A record carrying the engine's full counter snapshot and per-stage
/// rollups. The rollups are derived from the snapshot itself (one stage
/// span per cold build, timer totals), so they are exact whether or not
/// a trace sink was attached.
pub fn engine_record(
    subcommand: &str,
    seed: u64,
    features: &str,
    lut_bits: u64,
    engine: &Engine,
    wall_ns: u64,
) -> LedgerRecord {
    let mut rec = base_record(subcommand, seed, features, lut_bits, wall_ns);
    let snap = engine.snapshot();
    let registry = MetricsRegistry::new();
    snap.record_metrics(&registry);
    rec.record_registry(&registry);
    for (stage, count, total_ns) in [
        ("compile", snap.program_misses, snap.compile_ns),
        ("emulate", snap.trace_misses, snap.emulate_ns),
        ("encode", snap.image_misses, snap.encode_ns),
        ("report", snap.report_misses, snap.report_ns),
    ] {
        rec.stages
            .insert(stage.to_string(), StageRollup { count, total_ns });
    }
    rec
}

/// Appends `record` to the configured ledger. Best-effort: a disabled
/// ledger returns `None` silently, an I/O failure warns on stderr and
/// returns `None` — a measurement run must never die over bookkeeping.
pub fn append_best_effort(record: &LedgerRecord) -> Option<PathBuf> {
    let path = ledger::ledger_path()?;
    match ledger::append(&path, record) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("warning: ledger append to {} failed: {e}", path.display());
            None
        }
    }
}

/// Which way "better" points for a named sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Durations, sizes: smaller is better.
    LowerIsBetter,
    /// Throughputs, speedup ratios: bigger is better.
    HigherIsBetter,
}

/// Infers the direction from the sample-name suffix; `None` means the
/// sentinel cannot judge this sample.
pub fn direction_of(name: &str) -> Option<Direction> {
    if name.ends_with("_ns") || name.ends_with("_cycles") || name.ends_with("_bytes") {
        Some(Direction::LowerIsBetter)
    } else if name.ends_with("_mb_s") || name.ends_with("_per_s") || name.ends_with("_ratio") {
        Some(Direction::HigherIsBetter)
    } else {
        None
    }
}

/// Sentinel tuning.
#[derive(Debug, Clone, Copy)]
pub struct SentinelConfig {
    /// Relative band vs. the baseline best: a latest value worse than
    /// `best × (1 + band)` (or below `best / (1 + band)` for
    /// higher-is-better samples) trips the floor check.
    pub band: f64,
    /// Minimum baseline records before judging a group.
    pub min_samples: usize,
}

impl Default for SentinelConfig {
    fn default() -> SentinelConfig {
        SentinelConfig {
            band: 0.5,
            min_samples: 1,
        }
    }
}

/// How one (group, sample) comparison came out.
#[derive(Debug, Clone, PartialEq)]
pub enum SentinelStatus {
    /// Within band, or on the good side.
    Pass,
    /// Worse than the baseline best by more than the band AND beyond
    /// the median/MAD guard. `worse_by` is the ratio vs. the best
    /// (e.g. 2.0 = twice as slow).
    Regression {
        /// How much worse than the baseline best, as a ratio ≥ 1.
        worse_by: f64,
    },
    /// Fewer than `min_samples` baseline records: noted, not judged.
    InsufficientHistory,
}

/// One judged sample of one group's latest record.
#[derive(Debug, Clone)]
pub struct SampleVerdict {
    /// `fingerprint-key :: subcommand`.
    pub group: String,
    /// Sample name.
    pub sample: String,
    /// The latest record's value.
    pub latest: f64,
    /// Best baseline value (the noise floor).
    pub best: f64,
    /// Baseline median.
    pub median: f64,
    /// Baseline median absolute deviation.
    pub mad: f64,
    /// Baseline record count.
    pub baseline_n: usize,
    /// The verdict.
    pub status: SentinelStatus,
}

/// Median absolute deviation around the median.
pub fn mad(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    let med = crate::median(vals);
    let dev: Vec<f64> = vals.iter().map(|v| (v - med).abs()).collect();
    crate::median(&dev)
}

/// Judges the latest record of every (fingerprint, subcommand) group
/// against that group's earlier records, per sample. Records must be in
/// file (chronological) order, as [`ccc_telemetry::ledger::load`]
/// returns them.
pub fn check(records: &[LedgerRecord], cfg: &SentinelConfig) -> Vec<SampleVerdict> {
    let mut groups: BTreeMap<String, Vec<&LedgerRecord>> = BTreeMap::new();
    for rec in records {
        let key = format!("{} :: {}", rec.fingerprint.key(), rec.subcommand);
        groups.entry(key).or_default().push(rec);
    }
    let mut out = Vec::new();
    for (group, members) in groups {
        let (latest, baseline) = members.split_last().expect("groups are non-empty");
        for (name, &value) in &latest.samples {
            let Some(dir) = direction_of(name) else {
                continue;
            };
            let base_vals: Vec<f64> = baseline
                .iter()
                .filter_map(|r| r.samples.get(name).copied())
                .collect();
            let mut verdict = SampleVerdict {
                group: group.clone(),
                sample: name.clone(),
                latest: value,
                best: 0.0,
                median: 0.0,
                mad: 0.0,
                baseline_n: base_vals.len(),
                status: SentinelStatus::InsufficientHistory,
            };
            if base_vals.len() >= cfg.min_samples {
                let med = crate::median(&base_vals);
                let spread = mad(&base_vals);
                let guard = (3.0 * spread).max(0.05 * med.abs());
                let (best, worse_by, beyond_guard) = match dir {
                    Direction::LowerIsBetter => {
                        let best = base_vals.iter().copied().fold(f64::INFINITY, f64::min);
                        (best, value / best, value > med + guard)
                    }
                    Direction::HigherIsBetter => {
                        let best = base_vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                        (best, best / value, value < med - guard)
                    }
                };
                verdict.best = best;
                verdict.median = med;
                verdict.mad = spread;
                // NaN ratios (0/0 baselines) fail the comparison and
                // pass: no signal, no verdict.
                verdict.status = if worse_by > 1.0 + cfg.band && beyond_guard {
                    SentinelStatus::Regression { worse_by }
                } else {
                    SentinelStatus::Pass
                };
            }
            out.push(verdict);
        }
    }
    out
}

/// The ledger-derived floor for one higher-is-better sample: the best
/// same-fingerprint historical value, derated by `band`. Returns `None`
/// with fewer than `min_samples` history records — callers then fall
/// back to their hard-coded constant, which also remains the absolute
/// backstop (the effective floor is the max of both).
pub fn derived_floor(
    records: &[LedgerRecord],
    fingerprint: &Fingerprint,
    subcommand: &str,
    sample: &str,
    cfg: &SentinelConfig,
) -> Option<f64> {
    let vals: Vec<f64> = records
        .iter()
        .filter(|r| r.subcommand == subcommand && r.fingerprint.key() == fingerprint.key())
        .filter_map(|r| r.samples.get(sample).copied())
        .collect();
    if vals.len() < cfg.min_samples.max(1) {
        return None;
    }
    let best = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(best / (1.0 + cfg.band))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(subcommand: &str, samples: &[(&str, f64)]) -> LedgerRecord {
        let mut r = LedgerRecord::new(subcommand, Fingerprint::current("", 8));
        for (k, v) in samples {
            r.samples.insert((*k).to_string(), *v);
        }
        r
    }

    #[test]
    fn direction_inference() {
        assert_eq!(
            direction_of("prepare_wall_ns"),
            Some(Direction::LowerIsBetter)
        );
        assert_eq!(
            direction_of("decoded_mb_s"),
            Some(Direction::HigherIsBetter)
        );
        assert_eq!(
            direction_of("inter_over_lut_ratio"),
            Some(Direction::HigherIsBetter)
        );
        assert_eq!(direction_of("mystery"), None);
    }

    #[test]
    fn two_back_to_back_runs_pass() {
        let records = vec![
            rec("bench", &[("wall_ns", 100.0)]),
            rec("bench", &[("wall_ns", 104.0)]),
        ];
        let verdicts = check(&records, &SentinelConfig::default());
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].status, SentinelStatus::Pass);
    }

    #[test]
    fn injected_2x_slowdown_is_caught() {
        let records = vec![
            rec("bench", &[("wall_ns", 100.0)]),
            rec("bench", &[("wall_ns", 103.0)]),
            rec("bench", &[("wall_ns", 206.0)]),
        ];
        let verdicts = check(&records, &SentinelConfig::default());
        assert_eq!(verdicts.len(), 1);
        match &verdicts[0].status {
            SentinelStatus::Regression { worse_by } => {
                assert!(*worse_by > 2.0, "{worse_by}");
            }
            other => panic!("expected regression, got {other:?}"),
        }
    }

    #[test]
    fn throughput_drop_is_caught_and_gain_passes() {
        let base = [
            rec("decode_throughput", &[("decoded_mb_s", 2000.0)]),
            rec("decode_throughput", &[("decoded_mb_s", 2100.0)]),
        ];
        let mut dropped = base.to_vec();
        dropped.push(rec("decode_throughput", &[("decoded_mb_s", 900.0)]));
        let v = check(&dropped, &SentinelConfig::default());
        assert!(matches!(v[0].status, SentinelStatus::Regression { .. }));

        let mut gained = base.to_vec();
        gained.push(rec("decode_throughput", &[("decoded_mb_s", 4000.0)]));
        let v = check(&gained, &SentinelConfig::default());
        assert_eq!(v[0].status, SentinelStatus::Pass);
    }

    #[test]
    fn serve_ledger_samples_are_judgeable() {
        // The serve/loadgen tier's sample names must land on the right
        // side of the direction inference: req/s up is good, tail
        // latency down is good.
        assert_eq!(
            direction_of("throughput_per_s"),
            Some(Direction::HigherIsBetter)
        );
        for latency in ["hot_p50_ns", "hot_p99_ns", "cold_p50_ns", "cold_p99_ns"] {
            assert_eq!(
                direction_of(latency),
                Some(Direction::LowerIsBetter),
                "{latency}"
            );
        }
    }

    #[test]
    fn serve_throughput_collapse_and_tail_blowup_are_caught() {
        let base = [
            rec(
                "serve/loadgen",
                &[("throughput_per_s", 800.0), ("hot_p99_ns", 2_000_000.0)],
            ),
            rec(
                "serve/loadgen",
                &[("throughput_per_s", 840.0), ("hot_p99_ns", 2_100_000.0)],
            ),
        ];

        // Halved throughput on the latest run trips the sentinel.
        let mut collapsed = base.to_vec();
        collapsed.push(rec(
            "serve/loadgen",
            &[("throughput_per_s", 300.0), ("hot_p99_ns", 2_050_000.0)],
        ));
        let v = check(&collapsed, &SentinelConfig::default());
        let s = v
            .iter()
            .find(|x| x.group.ends_with(":: serve/loadgen") && x.sample == "throughput_per_s")
            .unwrap();
        assert!(
            matches!(s.status, SentinelStatus::Regression { .. }),
            "{v:?}"
        );

        // A 4x hot-path p99 blowup trips it even with throughput held.
        let mut blown = base.to_vec();
        blown.push(rec(
            "serve/loadgen",
            &[("throughput_per_s", 820.0), ("hot_p99_ns", 8_400_000.0)],
        ));
        let v = check(&blown, &SentinelConfig::default());
        let s = v
            .iter()
            .find(|x| x.group.ends_with(":: serve/loadgen") && x.sample == "hot_p99_ns")
            .unwrap();
        assert!(
            matches!(s.status, SentinelStatus::Regression { .. }),
            "{v:?}"
        );

        // Faster and higher-throughput passes clean on every sample.
        let mut improved = base.to_vec();
        improved.push(rec(
            "serve/loadgen",
            &[("throughput_per_s", 1600.0), ("hot_p99_ns", 1_000_000.0)],
        ));
        let v = check(&improved, &SentinelConfig::default());
        for s in v.iter().filter(|x| x.group.ends_with(":: serve/loadgen")) {
            assert_eq!(s.status, SentinelStatus::Pass, "{v:?}");
        }

        // And the derived throughput floor derates the baseline best,
        // which is what `tepic-cc perf --check` gates loadgen runs on.
        let fp = Fingerprint::current("", 8);
        let floor = derived_floor(
            &base,
            &fp,
            "serve/loadgen",
            "throughput_per_s",
            &SentinelConfig::default(),
        )
        .expect("two baseline records are enough");
        assert!(floor > 0.0 && floor < 840.0, "{floor}");
    }

    #[test]
    fn tight_baseline_noise_is_not_flagged() {
        // 4% jitter on a tight baseline: inside both the band and the
        // 5%-of-median guard.
        let records = vec![
            rec("bench", &[("wall_ns", 100.0)]),
            rec("bench", &[("wall_ns", 101.0)]),
            rec("bench", &[("wall_ns", 99.0)]),
            rec("bench", &[("wall_ns", 104.0)]),
        ];
        let v = check(&records, &SentinelConfig::default());
        assert_eq!(v[0].status, SentinelStatus::Pass);
    }

    #[test]
    fn insufficient_history_is_noted_not_failed() {
        let records = vec![rec("bench", &[("wall_ns", 100.0)])];
        let v = check(&records, &SentinelConfig::default());
        assert_eq!(v[0].status, SentinelStatus::InsufficientHistory);
        assert_eq!(v[0].baseline_n, 0);
    }

    #[test]
    fn groups_do_not_cross_subcommands() {
        // A slow "trace" run must not be judged against "bench" history.
        let records = vec![
            rec("bench", &[("wall_ns", 100.0)]),
            rec("trace", &[("wall_ns", 250.0)]),
        ];
        let v = check(&records, &SentinelConfig::default());
        for verdict in &v {
            assert_ne!(
                verdict.status,
                SentinelStatus::Regression { worse_by: 2.5 },
                "{verdict:?}"
            );
        }
        let trace_v = v.iter().find(|x| x.group.ends_with(":: trace")).unwrap();
        assert_eq!(trace_v.status, SentinelStatus::InsufficientHistory);
    }

    #[test]
    fn derived_floor_needs_history_and_derates_the_best() {
        let fp = Fingerprint::current("", 8);
        let cfg = SentinelConfig::default();
        assert_eq!(derived_floor(&[], &fp, "d", "x_mb_s", &cfg), None);
        let records = vec![
            rec("d", &[("x_mb_s", 3000.0)]),
            rec("d", &[("x_mb_s", 2400.0)]),
        ];
        let floor = derived_floor(&records, &fp, "d", "x_mb_s", &cfg).unwrap();
        assert!((floor - 2000.0).abs() < 1e-9, "{floor}");
    }

    #[test]
    fn mad_helper() {
        assert_eq!(mad(&[]), 0.0);
        assert_eq!(mad(&[5.0]), 0.0);
        assert!((mad(&[1.0, 2.0, 3.0, 4.0, 100.0]) - 1.0).abs() < 1e-12);
    }
}
