//! Pure renderers for every table/figure of the paper.
//!
//! Each function takes already-prepared data (see [`crate::engine`]) and
//! returns the finished text — no compiling, emulating or encoding
//! happens here, so one engine invocation feeds the entire figure suite
//! and the golden-snapshot tests diff exact strings.

use crate::engine::scheme_by_name;
use crate::{cache_study, cache_study_scaled, geomean, mean, median, render_table, Prepared};
use ccc_core::encoded::DecoderCost;
use ccc_core::fault::{run_campaign, CampaignConfig, Tally};
use ccc_core::schemes::stream::{StreamConfig, StreamScheme};
use ccc_core::schemes::{pair::PairScheme, Scheme, SchemeOutput};
use ccc_core::CompressionReport;
use ifetch_sim::{
    simulate, simulate_with_units, EncodingClass, FetchConfig, FetchUnits, PredictorKind,
};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use tinker_huffman::{entropy_bits, Dictionary};
use yula::{Emulator, Limits, OpCategory, OpMix, TraceStats};

/// The scheme columns of Figures 5, 7 and 10, in figure order.
const FIG_SCHEMES: [&str; 5] = ["byte", "stream", "stream_1", "full", "tailored"];

/// Table 1 — the cycle-count assumptions of the cache study.
pub fn table1() -> String {
    ifetch_sim::PenaltyTable::render_table1()
}

/// Table 2 — the baseline TEPIC ISA operation formats.
pub fn table2() -> String {
    tepic_isa::format::render_table2()
}

/// Figure 5 — per benchmark, the code segment size of every scheme as a
/// percentage of the original image.
pub fn fig05(reports: &[CompressionReport]) -> String {
    let mut out = String::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); FIG_SCHEMES.len()];
    for rep in reports {
        let mut row = vec![rep.name.clone(), format!("{}", rep.original_bytes)];
        for (i, s) in FIG_SCHEMES.iter().enumerate() {
            let r = rep.row(s).expect("scheme present");
            per_scheme[i].push(r.code_ratio);
            row.push(format!("{:.1}%", r.code_ratio * 100.0));
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string(), String::new()];
    for vals in &per_scheme {
        avg.push(format!("{:.1}%", mean(vals) * 100.0));
    }
    rows.push(avg);

    writeln!(
        out,
        "Figure 5. Different Compression Techniques comparison (code segment only)."
    )
    .unwrap();
    writeln!(
        out,
        "Values are encoded size as % of the original 40-bit image.\n"
    )
    .unwrap();
    let headers: Vec<&str> = std::iter::once("benchmark")
        .chain(std::iter::once("orig B"))
        .chain(FIG_SCHEMES)
        .collect();
    out.push_str(&render_table(&headers, &rows));
    writeln!(
        out,
        "\nPaper reference points: full ≈ 30%, tailored ≈ 64%, byte ≈ 72%, stream ≈ 75%."
    )
    .unwrap();
    out
}

/// Figure 7 — code segment plus the compressed Address Translation Table
/// for each scheme, and the dynamic ATB hit rates.
pub fn fig07(reports: &[CompressionReport], prepared: &[Prepared]) -> String {
    let mut out = String::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); FIG_SCHEMES.len()];
    let mut att_fracs: Vec<f64> = Vec::new();
    for rep in reports {
        let mut row = vec![rep.name.clone()];
        for (i, s) in FIG_SCHEMES.iter().enumerate() {
            let r = rep.row(s).expect("scheme present");
            per_scheme[i].push(r.total_ratio);
            att_fracs.push(r.att_bytes as f64 / r.code_bytes as f64);
            row.push(format!("{:.1}%", r.total_ratio * 100.0));
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for vals in &per_scheme {
        avg.push(format!("{:.1}%", mean(vals) * 100.0));
    }
    rows.push(avg);

    writeln!(
        out,
        "Figure 7. ATB characteristics / total code size (code + compressed ATT, % of original).\n"
    )
    .unwrap();
    let headers: Vec<&str> = std::iter::once("benchmark").chain(FIG_SCHEMES).collect();
    out.push_str(&render_table(&headers, &rows));
    writeln!(
        out,
        "\nMeasured ATT overhead: {:.1}% of the compressed code segment (paper: ≈15.5%).",
        mean(&att_fracs) * 100.0
    )
    .unwrap();

    // Dynamic side: ATB hit rates under the cache study configuration.
    // (The ATB sees only the block trace, so every translated encoding
    // shares the same hit rate.)
    writeln!(out, "\nATB hit rates (64-entry, fully associative, LRU):").unwrap();
    let mut rows2 = Vec::new();
    for p in prepared {
        let s = cache_study(p);
        rows2.push(vec![
            p.workload.name.to_string(),
            format!("{:.2}%", s.tailored.atb_hit_rate() * 100.0),
        ]);
    }
    out.push_str(&render_table(&["benchmark", "ATB hit"], &rows2));
    out
}

/// Figure 10 — the worst-case transistor estimate of each scheme's
/// decode hardware.
pub fn fig10(reports: &[CompressionReport]) -> String {
    let mut out = String::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut per_scheme: Vec<Vec<f64>> = vec![Vec::new(); FIG_SCHEMES.len()];
    for rep in reports {
        let mut row = vec![rep.name.clone()];
        for (i, s) in FIG_SCHEMES.iter().enumerate() {
            let r = rep.row(s).expect("scheme present");
            per_scheme[i].push(r.decoder_transistors as f64);
            row.push(group_digits(r.decoder_transistors));
        }
        rows.push(row);
    }
    let mut gm = vec!["geomean".to_string()];
    for vals in &per_scheme {
        gm.push(group_digits(geomean(vals) as u128));
    }
    rows.push(gm);

    writeln!(out, "Figure 10. Decoder complexity (modelled transistors).").unwrap();
    writeln!(
        out,
        "Huffman schemes: T = 2m(2^n-1) + 4m(2^n-2^(n-1)-1) + 2n per table;"
    )
    .unwrap();
    writeln!(
        out,
        "tailored: two-plane PLA over the dense (OPT,OPCODE) selector.\n"
    )
    .unwrap();
    let headers: Vec<&str> = std::iter::once("benchmark").chain(FIG_SCHEMES).collect();
    out.push_str(&render_table(&headers, &rows));
    writeln!(
        out,
        "\nPaper shape: Full largest by far; byte smallest of the Huffman family;"
    )
    .unwrap();
    writeln!(
        out,
        "the stream family sits between; the tailored PLA is nearly free."
    )
    .unwrap();
    out
}

fn group_digits(v: u128) -> String {
    let s = v.to_string();
    let bytes: Vec<u8> = s.bytes().rev().collect();
    let mut grouped = Vec::new();
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            grouped.push(b'_');
        }
        grouped.push(*b);
    }
    grouped.reverse();
    String::from_utf8(grouped).expect("digits")
}

/// Figure 13 — operations delivered per cycle for Ideal / Base /
/// Compressed / Tailored on every benchmark.
pub fn fig13(prepared: &[Prepared]) -> String {
    let mut out = String::new();
    let mut rows = Vec::new();
    let (mut ideals, mut bases, mut comps, mut tails) = (vec![], vec![], vec![], vec![]);
    for p in prepared {
        let s = cache_study_scaled(p);
        ideals.push(s.ideal.ipc());
        bases.push(s.base.ipc());
        comps.push(s.compressed.ipc());
        tails.push(s.tailored.ipc());
        rows.push(vec![
            p.workload.name.to_string(),
            format!("{:.3}", s.ideal.ipc()),
            format!("{:.3}", s.base.ipc()),
            format!("{:.3}", s.compressed.ipc()),
            format!("{:.3}", s.tailored.ipc()),
            format!("{:.1}%", s.base.pred_accuracy() * 100.0),
            format!("{:.1}%", s.base.cache_hit_rate() * 100.0),
            format!("{:.1}%", s.compressed.cache_hit_rate() * 100.0),
        ]);
    }
    rows.push(vec![
        "average".into(),
        format!("{:.3}", mean(&ideals)),
        format!("{:.3}", mean(&bases)),
        format!("{:.3}", mean(&comps)),
        format!("{:.3}", mean(&tails)),
        String::new(),
        String::new(),
        String::new(),
    ]);
    rows.push(vec![
        "median".into(),
        format!("{:.3}", median(&ideals)),
        format!("{:.3}", median(&bases)),
        format!("{:.3}", median(&comps)),
        format!("{:.3}", median(&tails)),
        String::new(),
        String::new(),
        String::new(),
    ]);

    writeln!(
        out,
        "Figure 13. Cache study summary — operations delivered per cycle."
    )
    .unwrap();
    writeln!(out, "Ideal = perfect cache & predictor; issue width 6.\n").unwrap();
    out.push_str(&render_table(
        &[
            "benchmark",
            "ideal",
            "base",
            "compressed",
            "tailored",
            "b.pred",
            "b.I$hit",
            "c.I$hit",
        ],
        &rows,
    ));
    writeln!(
        out,
        "\nPaper shape: Tailored > Base on average (≈5-10%); Compressed beats Base in the"
    )
    .unwrap();
    writeln!(
        out,
        "median but loses on some benchmarks (compress, go, ijpeg, m88ksim) where its"
    )
    .unwrap();
    writeln!(
        out,
        "deeper misprediction/miss-repair penalty outweighs the capacity win."
    )
    .unwrap();

    let tail_gain = (mean(&tails) / mean(&bases) - 1.0) * 100.0;
    let comp_gain_med = (median(&comps) / median(&bases) - 1.0) * 100.0;
    writeln!(out, "\nMeasured: tailored vs base (mean): {tail_gain:+.1}%").unwrap();
    writeln!(
        out,
        "Measured: compressed vs base (median): {comp_gain_med:+.1}%"
    )
    .unwrap();

    // Companion view at the paper's literal cache sizes (16KB/20KB): our
    // workloads fit entirely, so the capacity effects vanish and only
    // the pipeline-depth differences remain — printed to make the
    // scaling substitution auditable.
    writeln!(
        out,
        "\nPaper-spec caches (16KB/20KB; everything fits — pipeline effects only):"
    )
    .unwrap();
    let mut rows2 = Vec::new();
    for p in prepared {
        let s = cache_study(p);
        rows2.push(vec![
            p.workload.name.to_string(),
            format!("{:.3}", s.base.ipc()),
            format!("{:.3}", s.compressed.ipc()),
            format!("{:.3}", s.tailored.ipc()),
        ]);
    }
    out.push_str(&render_table(
        &["benchmark", "base", "compressed", "tailored"],
        &rows2,
    ));
    out
}

/// Figure 14 — switching activity on the 64-bit code-memory bus for
/// Base / Compressed / Tailored.
pub fn fig14(prepared: &[Prepared]) -> String {
    let mut out = String::new();
    let mut rows = Vec::new();
    let mut rel_tail = Vec::new();
    let mut rel_comp = Vec::new();
    for p in prepared {
        let s = cache_study_scaled(p);
        let b = s.base.bus_bit_flips.max(1) as f64;
        rel_tail.push(s.tailored.bus_bit_flips as f64 / b);
        rel_comp.push(s.compressed.bus_bit_flips as f64 / b);
        rows.push(vec![
            p.workload.name.to_string(),
            s.base.bus_bit_flips.to_string(),
            s.compressed.bus_bit_flips.to_string(),
            s.tailored.bus_bit_flips.to_string(),
            format!("{:.2}", s.compressed.bus_bit_flips as f64 / b),
            format!("{:.2}", s.tailored.bus_bit_flips as f64 / b),
            s.base.bus_beats.to_string(),
            s.compressed.bus_beats.to_string(),
            s.tailored.bus_beats.to_string(),
        ]);
    }
    writeln!(
        out,
        "Figure 14. Memory bus bit flips summary (and bus beats).\n"
    )
    .unwrap();
    out.push_str(&render_table(
        &[
            "benchmark",
            "base flips",
            "comp flips",
            "tail flips",
            "comp/base",
            "tail/base",
            "base beats",
            "comp beats",
            "tail beats",
        ],
        &rows,
    ));
    writeln!(
        out,
        "\nAverage relative activity: compressed {:.2}x, tailored {:.2}x of base.",
        mean(&rel_comp),
        mean(&rel_tail)
    )
    .unwrap();
    writeln!(
        out,
        "(In the Figure-13 configuration the compressed image fits its cache almost"
    )
    .unwrap();
    writeln!(
        out,
        " entirely, so its bus traffic collapses to cold misses.)"
    )
    .unwrap();

    // Second view: a tight cache (8% of the base image) where every
    // encoding misses — here the savings visibly track the degree of
    // compression, the paper's Figure-14 shape.
    writeln!(
        out,
        "\nTight-cache view (capacity = 8% of the base image for every encoding):\n"
    )
    .unwrap();
    let mut rows2 = Vec::new();
    let mut r2_tail = Vec::new();
    let mut r2_comp = Vec::new();
    for p in prepared {
        let cap = (p.base_img.total_bytes() / 12).max(240);
        let mk = |mut cfg: FetchConfig| {
            cfg.cache.capacity = cap;
            cfg
        };
        let base = simulate(&p.program, &p.base_img, &p.trace, &mk(FetchConfig::base()));
        let comp = simulate(
            &p.program,
            &p.compressed_img,
            &p.trace,
            &mk(FetchConfig::compressed()),
        );
        let tail = simulate(
            &p.program,
            &p.tailored_img,
            &p.trace,
            &mk(FetchConfig::tailored()),
        );
        let b = base.bus_bit_flips.max(1) as f64;
        r2_comp.push(comp.bus_bit_flips as f64 / b);
        r2_tail.push(tail.bus_bit_flips as f64 / b);
        rows2.push(vec![
            p.workload.name.to_string(),
            base.bus_bit_flips.to_string(),
            comp.bus_bit_flips.to_string(),
            tail.bus_bit_flips.to_string(),
            format!("{:.2}", comp.bus_bit_flips as f64 / b),
            format!("{:.2}", tail.bus_bit_flips as f64 / b),
        ]);
    }
    out.push_str(&render_table(
        &[
            "benchmark",
            "base flips",
            "comp flips",
            "tail flips",
            "comp/base",
            "tail/base",
        ],
        &rows2,
    ));
    writeln!(
        out,
        "\nTight-cache average: compressed {:.2}x, tailored {:.2}x of base — tracking the",
        mean(&r2_comp),
        mean(&r2_tail)
    )
    .unwrap();
    writeln!(
        out,
        "compression ratios ({:.2} and {:.2} respectively).",
        0.20, 0.57
    )
    .unwrap();
    writeln!(
        out,
        "Paper shape: savings track the degree of compression — each scheme brings in"
    )
    .unwrap();
    writeln!(out, "more instructions per bit flipped.").unwrap();
    out
}

/// Workload inventory: static/dynamic sizes, trace shape and operation
/// mix for every benchmark.
pub fn diag(prepared: &[Prepared]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<10} {:>7} {:>6} {:>10} {:>9} {:>8} {:>6}",
        "workload", "st.ops", "blocks", "dyn.ops", "dyn.blks", "density", "taken"
    )
    .unwrap();
    for p in prepared {
        let stats = TraceStats::compute(&p.program, &p.trace);
        writeln!(
            out,
            "{:<10} {:>7} {:>6} {:>10} {:>9} {:>8.2} {:>6.2}",
            p.workload.name,
            p.program.num_ops(),
            p.program.num_blocks(),
            stats.ops,
            stats.blocks,
            stats.avg_mop_density(),
            stats.taken_fraction
        )
        .unwrap();
    }

    writeln!(out, "\nDynamic operation mix (% of executed ops):").unwrap();
    write!(out, "{:<10}", "workload").unwrap();
    for c in OpCategory::ALL {
        write!(out, "{:>8}", c.label()).unwrap();
    }
    writeln!(out).unwrap();
    for p in prepared {
        let mix = OpMix::dynamic_mix(&p.program, &p.trace);
        write!(out, "{:<10}", p.workload.name).unwrap();
        for c in OpCategory::ALL {
            write!(out, "{:>7.1}%", mix.fraction(c) * 100.0).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// The four microarchitectural ablation studies (L0 capacity, Huffman
/// length bound, ATB capacity, cache associativity).
pub fn ablations(prepared: &[Prepared]) -> String {
    let mut out = String::new();

    // --- 1. L0 buffer capacity (compressed encoding) -------------------
    writeln!(
        out,
        "Ablation 1: L0 decompression-buffer capacity (compressed encoding, scaled caches)\n"
    )
    .unwrap();
    let mut rows = Vec::new();
    for l0 in [0u32, 8, 16, 32, 64, 128] {
        let mut ipcs = Vec::new();
        let mut hit = Vec::new();
        for p in prepared {
            let mut cfg = FetchConfig::scaled(EncodingClass::Compressed, p.base_img.total_bytes());
            cfg.l0_ops = l0.max(1);
            if l0 == 0 {
                // Capacity 1 op: effectively no buffer.
                cfg.l0_ops = 1;
            }
            let r = simulate(&p.program, &p.compressed_img, &p.trace, &cfg);
            ipcs.push(r.ipc());
            let t = r.buffer_hits + r.buffer_misses;
            hit.push(if t == 0 {
                0.0
            } else {
                r.buffer_hits as f64 / t as f64
            });
        }
        rows.push(vec![
            if l0 == 0 {
                "none".to_string()
            } else {
                format!("{l0} ops")
            },
            format!("{:.3}", mean(&ipcs)),
            format!("{:.1}%", mean(&hit) * 100.0),
        ]);
    }
    out.push_str(&render_table(
        &["L0 size", "mean IPC", "L0 hit rate"],
        &rows,
    ));
    writeln!(
        out,
        "(The paper fixes 32 ops: \"tight, frequently executed loops fit completely\".)\n"
    )
    .unwrap();

    // --- 2. Huffman length bound (byte scheme, where it binds) ----------
    writeln!(
        out,
        "Ablation 2: Huffman length bound — byte scheme (code size vs decoder size)\n"
    )
    .unwrap();
    let mut rows = Vec::new();
    for bound in [8u8, 9, 10, 12, 14, 16] {
        let mut ratio = Vec::new();
        let mut decoder = Vec::new();
        let mut ok = true;
        for p in prepared {
            match (ccc_core::schemes::byte::ByteScheme {
                max_code_len: bound,
            })
            .compress(&p.program)
            {
                Ok(scheme_out) => {
                    ratio.push(scheme_out.image.ratio(p.program.code_size()));
                    decoder.push(scheme_out.image.decoder.transistors() as f64);
                }
                Err(_) => ok = false,
            }
        }
        if !ok {
            rows.push(vec![
                format!("{bound}"),
                "bound too tight".into(),
                String::new(),
            ]);
            continue;
        }
        rows.push(vec![
            format!("{bound}"),
            format!("{:.2}%", mean(&ratio) * 100.0),
            format!("{:.0}", mean(&decoder)),
        ]);
    }
    out.push_str(&render_table(
        &["max code bits", "mean code %", "mean decoder T"],
        &rows,
    ));
    writeln!(
        out,
        "(Tighter bounds barely cost code size but shrink the worst-case tree — the"
    )
    .unwrap();
    writeln!(
        out,
        " §2.2 bounded-Huffman rationale. The Full scheme's natural max length sits"
    )
    .unwrap();
    writeln!(
        out,
        " below every practical bound at this dictionary scale, so the bound only"
    )
    .unwrap();
    writeln!(out, " binds for the byte alphabet.)\n").unwrap();

    // --- 3. ATB capacity ------------------------------------------------
    writeln!(
        out,
        "Ablation 3: ATB capacity (tailored encoding, scaled caches)\n"
    )
    .unwrap();
    let mut rows = Vec::new();
    for entries in [2usize, 4, 8, 16, 32, 64, 128] {
        let mut ipcs = Vec::new();
        let mut hits = Vec::new();
        for p in prepared {
            let mut cfg = FetchConfig::scaled(EncodingClass::Tailored, p.base_img.total_bytes());
            cfg.atb_entries = entries;
            let r = simulate(&p.program, &p.tailored_img, &p.trace, &cfg);
            ipcs.push(r.ipc());
            hits.push(r.atb_hit_rate());
        }
        rows.push(vec![
            format!("{entries}"),
            format!("{:.3}", mean(&ipcs)),
            format!("{:.1}%", mean(&hits) * 100.0),
        ]);
    }
    out.push_str(&render_table(
        &["ATB entries", "mean IPC", "ATB hit rate"],
        &rows,
    ));
    writeln!(
        out,
        "(Past a few dozen entries the ATB stops mattering — §3.3's low contention.)\n"
    )
    .unwrap();

    // --- 4. Cache associativity -----------------------------------------
    writeln!(
        out,
        "Ablation 4: ICache associativity (base encoding, scaled capacity)\n"
    )
    .unwrap();
    let mut rows = Vec::new();
    for ways in [1usize, 2, 4, 8] {
        let mut ipcs = Vec::new();
        let mut hits = Vec::new();
        for p in prepared {
            let mut cfg = FetchConfig::scaled(EncodingClass::Base, p.base_img.total_bytes());
            cfg.cache.ways = ways;
            let r = simulate(&p.program, &p.base_img, &p.trace, &cfg);
            ipcs.push(r.ipc());
            hits.push(r.cache_hit_rate());
        }
        rows.push(vec![
            format!("{ways}-way"),
            format!("{:.3}", mean(&ipcs)),
            format!("{:.1}%", mean(&hits) * 100.0),
        ]);
    }
    out.push_str(&render_table(&["assoc", "mean IPC", "I$ hit rate"], &rows));
    writeln!(out, "(The paper's 2-way choice sits at the knee.)").unwrap();
    out
}

/// Diagnostic sweep: Base-encoding ICache hit rate vs capacity, per
/// workload.
pub fn sweep_cache(prepared: &[Prepared]) -> String {
    let mut out = String::new();
    let caps: Vec<usize> = vec![256, 512, 1024, 2048, 4096, 8192, 16384];
    let mut rows = Vec::new();
    for p in prepared {
        let mut row = vec![
            p.workload.name.to_string(),
            format!("{}", p.base_img.total_bytes()),
        ];
        for &cap in &caps {
            let mut cfg = FetchConfig::base();
            cfg.cache.capacity = cap;
            let r = simulate(&p.program, &p.base_img, &p.trace, &cfg);
            row.push(format!("{:.1}", r.cache_hit_rate() * 100.0));
        }
        rows.push(row);
    }
    let headers: Vec<String> = ["benchmark".to_string(), "code B".to_string()]
        .into_iter()
        .chain(caps.iter().map(|c| format!("{c}B")))
        .collect();
    let hdr_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    writeln!(
        out,
        "Base-encoding ICache hit rate (%) vs capacity (2-way, 30B lines):\n"
    )
    .unwrap();
    out.push_str(&render_table(&hdr_refs, &rows));
    out
}

/// The six stream configurations of paper Figure 3 / §2.2: code size and
/// decoder complexity of every configuration on every workload.
pub fn stream_explorer(prepared: &[Prepared]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Stream configuration explorer (paper Figure 3 / §2.2).\n"
    )
    .unwrap();
    writeln!(out, "Configurations (bit cut points over the 40-bit op):").unwrap();
    for c in &StreamConfig::ALL {
        let widths: Vec<String> = (0..c.num_streams())
            .map(|i| c.stream_bits(i).1.to_string())
            .collect();
        writeln!(
            out,
            "  {:<9} cuts {:?} → stream widths [{}]",
            c.name,
            c.cuts,
            widths.join(", ")
        )
        .unwrap();
    }
    writeln!(out).unwrap();

    let mut rows = Vec::new();
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); StreamConfig::ALL.len()];
    let mut decoders: Vec<Vec<f64>> = vec![Vec::new(); StreamConfig::ALL.len()];
    for p in prepared {
        let mut row = vec![p.workload.name.to_string()];
        for (i, c) in StreamConfig::ALL.iter().enumerate() {
            let scheme_out = StreamScheme::with_config(c)
                .compress(&p.program)
                .expect("compresses");
            assert!(
                scheme_out.verify_roundtrip(&p.program),
                "{}/{}",
                p.workload.name,
                c.name
            );
            let r = scheme_out.image.ratio(p.program.code_size());
            ratios[i].push(r);
            decoders[i].push(scheme_out.image.decoder.transistors() as f64);
            row.push(format!("{:.1}%", r * 100.0));
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for v in &ratios {
        avg.push(format!("{:.1}%", mean(v) * 100.0));
    }
    rows.push(avg);
    let mut dec = vec!["decoder T".to_string()];
    for v in &decoders {
        dec.push(format!("{:.0}", mean(v)));
    }
    rows.push(dec);

    let headers: Vec<&str> = std::iter::once("benchmark")
        .chain(StreamConfig::ALL.iter().map(|c| c.name))
        .collect();
    out.push_str(&render_table(&headers, &rows));

    // Confirm the paper's two selections hold on this corpus.
    let avg_ratio: Vec<f64> = ratios.iter().map(|v| mean(v)).collect();
    let avg_dec: Vec<f64> = decoders.iter().map(|v| mean(v)).collect();
    let best_code = (0..avg_ratio.len()).min_by(|&a, &b| avg_ratio[a].total_cmp(&avg_ratio[b]));
    let best_dec = (0..avg_dec.len()).min_by(|&a, &b| avg_dec[a].total_cmp(&avg_dec[b]));
    writeln!(
        out,
        "\nSmallest code : {} ({:.1}%)",
        StreamConfig::ALL[best_code.unwrap()].name,
        avg_ratio[best_code.unwrap()] * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "Smallest decoder: {} ({:.0} transistors)",
        StreamConfig::ALL[best_dec.unwrap()].name,
        avg_dec[best_dec.unwrap()]
    )
    .unwrap();
    out
}

/// Extension: complex blocks as fetch units (paper §7 future work).
pub fn ext_complex_units(prepared: &[Prepared]) -> String {
    let mut out = String::new();
    let mut rows = Vec::new();
    let mut tail_gain = Vec::new();
    for p in prepared {
        let code = p.base_img.total_bytes();
        let units = FetchUnits::form(&p.program, &p.trace, 0.8);
        let cfg_t = FetchConfig::scaled(EncodingClass::Tailored, code);
        let cfg_b = FetchConfig::scaled(EncodingClass::Base, code);
        let tb = simulate(&p.program, &p.tailored_img, &p.trace, &cfg_t);
        let tu = simulate_with_units(&p.program, &p.tailored_img, &p.trace, &cfg_t, &units);
        let bb = simulate(&p.program, &p.base_img, &p.trace, &cfg_b);
        let bu = simulate_with_units(&p.program, &p.base_img, &p.trace, &cfg_b, &units);
        tail_gain.push(tu.ipc() / tb.ipc() - 1.0);
        rows.push(vec![
            p.workload.name.to_string(),
            format!("{:.2}", units.avg_len()),
            format!("{:.3}", bb.ipc()),
            format!("{:.3}", bu.ipc()),
            format!("{:.3}", tb.ipc()),
            format!("{:.3}", tu.ipc()),
            format!("{:.2}x", tu.bus_beats as f64 / tb.bus_beats.max(1) as f64),
            format!(
                "{:.0}%",
                100.0 * (tb.pred_correct + tb.pred_wrong) as f64
                    / (tu.pred_correct + tu.pred_wrong).max(1) as f64
            ),
        ]);
    }
    writeln!(
        out,
        "Extension: complex fetch units (profile-formed, θ = 0.8) vs basic blocks.\n"
    )
    .unwrap();
    out.push_str(&render_table(
        &[
            "benchmark",
            "blk/unit",
            "base blk",
            "base unit",
            "tail blk",
            "tail unit",
            "unit bus",
            "pred pts",
        ],
        &rows,
    ));
    writeln!(
        out,
        "\nMean tailored IPC effect of complex units: {:+.2}%.",
        mean(&tail_gain) * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "Longer units remove per-block prediction points but over-fetch on early"
    )
    .unwrap();
    writeln!(
        out,
        "exits — the tension the paper flags for its future complex-block study."
    )
    .unwrap();
    writeln!(
        out,
        "('pred pts' = block-granularity prediction points as % of unit-granularity.)"
    )
    .unwrap();
    out
}

fn dict_bytes(scheme_out: &SchemeOutput) -> usize {
    match &scheme_out.image.decoder {
        DecoderCost::Huffman(parts) => parts.iter().map(|p| p.k * (p.m as usize).div_ceil(8)).sum(),
        _ => 0,
    }
}

/// Extension: op-pair Huffman vs whole-op Huffman (the §2.2
/// entropy-limit observation).
pub fn ext_entropy_limit(prepared: &[Prepared]) -> String {
    let mut out = String::new();
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for p in prepared {
        let dict: Dictionary<u64> = p.program.op_words().into_iter().collect();
        let h = entropy_bits(dict.freqs());
        let full = scheme_by_name("full")
            .expect("builtin")
            .compress(&p.program)
            .unwrap();
        let pair = PairScheme::default().compress(&p.program).unwrap();
        assert!(pair.verify_roundtrip(&p.program));
        let bits =
            |o: &SchemeOutput| o.image.total_bytes() as f64 * 8.0 / p.program.num_ops() as f64;
        let full_total = full.image.total_bytes() + dict_bytes(&full);
        let pair_total = pair.image.total_bytes() + dict_bytes(&pair);
        ratios.push(pair_total as f64 / full_total as f64);
        rows.push(vec![
            p.workload.name.to_string(),
            format!("{h:.2}"),
            format!("{:.2}", bits(&full)),
            format!("{:.2}", bits(&pair)),
            full.image.total_bytes().to_string(),
            dict_bytes(&full).to_string(),
            pair.image.total_bytes().to_string(),
            dict_bytes(&pair).to_string(),
            format!("{:.2}x", pair_total as f64 / full_total as f64),
        ]);
    }
    writeln!(
        out,
        "Extension: op-pair Huffman vs whole-op Huffman (the entropy-limit check).\n"
    )
    .unwrap();
    out.push_str(&render_table(
        &[
            "benchmark",
            "H(op) bits",
            "full b/op",
            "pair b/op",
            "full img",
            "full dict",
            "pair img",
            "pair dict",
            "pair/full total",
        ],
        &rows,
    ));
    writeln!(
        out,
        "\nMean total (image + decoder dictionary): pairing costs {:.2}x whole-op coding.",
        mean(&ratios)
    )
    .unwrap();
    writeln!(
        out,
        "Pairing shrinks the image only by moving the program into its dictionary —"
    )
    .unwrap();
    writeln!(
        out,
        "per-op coding already sits within a bit of the program's op entropy (§2.2)."
    )
    .unwrap();
    out
}

/// Extension: the fault-injection campaign over every scheme's payload,
/// dictionaries and ATT entries.
pub fn ext_fault_campaign(prepared: &[Prepared], cfg: &CampaignConfig) -> String {
    let mut out = String::new();
    // scheme -> (payload, payload_raw, dict, att, amp sums)
    let mut agg: BTreeMap<String, (Tally, Tally, Tally, Tally, f64)> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut workloads = 0u32;
    for p in prepared {
        let rep = run_campaign(&p.program, cfg);
        workloads += 1;
        for row in &rep.rows {
            if !order.contains(&row.scheme) {
                order.push(row.scheme.clone());
            }
            let e = agg.entry(row.scheme.clone()).or_default();
            for (sum, part) in [
                (&mut e.0, row.payload),
                (&mut e.1, row.payload_raw),
                (&mut e.2, row.dictionary),
                (&mut e.3, row.att),
            ] {
                sum.detected += part.detected;
                sum.contained += part.contained;
                sum.sdc += part.sdc;
                sum.masked += part.masked;
            }
            e.4 += row.raw_amplification;
        }
    }

    writeln!(
        out,
        "Extension: fault-injection campaign, {} faults per scheme per target per\n\
         workload, {} workloads, seed {}. Fault mix: 1/2 bit-flips, 1/4 stuck-at,\n\
         1/4 bursts (2-8 bits).\n",
        cfg.faults_per_target, workloads, cfg.seed
    )
    .unwrap();
    writeln!(
        out,
        "Payload faults, integrity checks ON (per-block parity + typed decode errors):\n"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>9} {:>9} {:>5} {:>8}",
        "scheme", "detected", "contained", "sdc", "masked"
    )
    .unwrap();
    for s in &order {
        let e = &agg[s];
        writeln!(
            out,
            "{s:<10} {:>9} {:>9} {:>5} {:>8}",
            e.0.detected, e.0.contained, e.0.sdc, e.0.masked
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nPayload faults, RAW decoder only (no parity) - each encoding's intrinsic\n\
         error response; 'amp' is mean corrupted ops per undetected fault:\n"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>9} {:>9} {:>5} {:>8} {:>7}",
        "scheme", "detected", "contained", "sdc", "masked", "amp"
    )
    .unwrap();
    for s in &order {
        let e = &agg[s];
        writeln!(
            out,
            "{s:<10} {:>9} {:>9} {:>5} {:>8} {:>7.2}",
            e.1.detected,
            e.1.contained,
            e.1.sdc,
            e.1.masked,
            e.4 / workloads as f64
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nDictionary faults (CRC32 over decode tables) and ATT entry faults\n\
         (CRC-8 self-check):\n"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>9} {:>5} {:>8}   {:>9} {:>5} {:>8}",
        "scheme", "dict det", "sdc", "masked", "att det", "sdc", "masked"
    )
    .unwrap();
    for s in &order {
        let e = &agg[s];
        writeln!(
            out,
            "{s:<10} {:>9} {:>5} {:>8}   {:>9} {:>5} {:>8}",
            e.2.detected, e.2.sdc, e.2.masked, e.3.detected, e.3.sdc, e.3.masked
        )
        .unwrap();
    }
    let protected_sdc: u64 = agg.values().map(|e| e.0.sdc + e.2.sdc + e.3.sdc).sum();
    writeln!(
        out,
        "\nSDC in protected regions (payload+parity, dictionaries, ATT): {protected_sdc}."
    )
    .unwrap();
    writeln!(
        out,
        "Huffman streams amplify undetected errors (a wrong code length cascades to\n\
         the block end) where the tailored encoding's fixed-width fields corrupt only\n\
         the struck op - but block-atomic fetch contains both, and the parity/CRC\n\
         layer catches what the decoder cannot."
    )
    .unwrap();
    out
}

/// Extension: gshare vs per-block 2-bit counters (paper §7 future work).
pub fn ext_gshare(prepared: &[Prepared]) -> String {
    let mut out = String::new();
    let mut rows = Vec::new();
    let mut base_gain = Vec::new();
    let mut tail_gain = Vec::new();
    for p in prepared {
        let code = p.base_img.total_bytes();
        let run = |class: EncodingClass, predictor: PredictorKind| {
            let mut cfg = FetchConfig::scaled(class, code);
            cfg.predictor = predictor;
            let img = match class {
                EncodingClass::Tailored => &p.tailored_img,
                EncodingClass::Compressed => &p.compressed_img,
                _ => &p.base_img,
            };
            simulate(&p.program, img, &p.trace, &cfg)
        };
        let g = PredictorKind::Gshare { history_bits: 12 };
        let b2 = run(EncodingClass::Base, PredictorKind::AtbTwoBit);
        let bg = run(EncodingClass::Base, g);
        let t2 = run(EncodingClass::Tailored, PredictorKind::AtbTwoBit);
        let tg = run(EncodingClass::Tailored, g);
        let c2 = run(EncodingClass::Compressed, PredictorKind::AtbTwoBit);
        let cg = run(EncodingClass::Compressed, g);
        base_gain.push(bg.ipc() / b2.ipc() - 1.0);
        tail_gain.push(tg.ipc() / t2.ipc() - 1.0);
        rows.push(vec![
            p.workload.name.to_string(),
            format!("{:.1}%", b2.pred_accuracy() * 100.0),
            format!("{:.1}%", bg.pred_accuracy() * 100.0),
            format!("{:.3}", b2.ipc()),
            format!("{:.3}", bg.ipc()),
            format!("{:.3}", t2.ipc()),
            format!("{:.3}", tg.ipc()),
            format!("{:.3}", c2.ipc()),
            format!("{:.3}", cg.ipc()),
        ]);
    }
    writeln!(
        out,
        "Extension: gshare (4096-entry, 12-bit history) vs per-block 2-bit counters.\n"
    )
    .unwrap();
    out.push_str(&render_table(
        &[
            "benchmark",
            "2bit acc",
            "gshare acc",
            "base 2bit",
            "base gsh",
            "tail 2bit",
            "tail gsh",
            "comp 2bit",
            "comp gsh",
        ],
        &rows,
    ));
    writeln!(
        out,
        "\nMean IPC effect of gshare: base {:+.2}%, tailored {:+.2}%.",
        mean(&base_gain) * 100.0,
        mean(&tail_gain) * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "The paper predicts room here: a deeper decode pipeline raises the value of"
    )
    .unwrap();
    writeln!(
        out,
        "prediction accuracy, so Compressed benefits most when gshare wins."
    )
    .unwrap();
    out
}

/// Extension: the tail-duplication trade (ROM bytes vs block
/// enlargement). Recompiles each workload with duplication enabled —
/// intentionally outside the cache, since the variant options are the
/// experiment itself.
pub fn ext_tail_duplication(prepared: &[Prepared]) -> String {
    let mut out = String::new();
    let mut rows = Vec::new();
    let mut size_growth = Vec::new();
    let mut ipc_change = Vec::new();
    for p in prepared {
        let plain = &p.program;
        let duped = lego::compile(
            p.workload.source(),
            &lego::Options {
                tail_duplicate: Some(6),
                ..lego::Options::default()
            },
        )
        .expect("compiles with tail duplication");

        let run_plain = Emulator::new(plain).run(&Limits::default()).expect("runs");
        let run_duped = Emulator::new(&duped).run(&Limits::default()).expect("runs");
        assert_eq!(
            run_plain.output, run_duped.output,
            "{}: behaviour changed!",
            p.workload.name
        );

        // Fetch both in their own address spaces, at equal cache pressure
        // relative to the *plain* image (duplication must pay for its own
        // extra bytes).
        let img_p = &p.base_img;
        let img_d = ccc_core::schemes::base::encode_base(&duped);
        let code = img_p.total_bytes();
        let cfg = FetchConfig::scaled(EncodingClass::Base, code);
        let rp = simulate(plain, img_p, &p.trace, &cfg);
        let rd = simulate(&duped, &img_d, &run_duped.trace, &cfg);

        size_growth.push(duped.code_size() as f64 / plain.code_size() as f64);
        ipc_change.push(rd.ipc() / rp.ipc() - 1.0);
        rows.push(vec![
            p.workload.name.to_string(),
            plain.code_size().to_string(),
            format!(
                "{:+.1}%",
                (duped.code_size() as f64 / plain.code_size() as f64 - 1.0) * 100.0
            ),
            format!(
                "{:.2}",
                run_plain.stats.ops as f64 / run_plain.stats.blocks as f64
            ),
            format!(
                "{:.2}",
                run_duped.stats.ops as f64 / run_duped.stats.blocks as f64
            ),
            format!("{:.3}", rp.ipc()),
            format!("{:.3}", rd.ipc()),
            format!("{:.1}%", rp.pred_accuracy() * 100.0),
            format!("{:.1}%", rd.pred_accuracy() * 100.0),
        ]);
    }
    writeln!(
        out,
        "Extension: tail duplication (join blocks ≤ 6 insts cloned into jump preds).\n"
    )
    .unwrap();
    out.push_str(&render_table(
        &[
            "benchmark",
            "code B",
            "Δsize",
            "ops/blk",
            "dup ops/blk",
            "base IPC",
            "dup IPC",
            "pred",
            "dup pred",
        ],
        &rows,
    ));
    writeln!(
        out,
        "\nMean: code size {:+.1}%, IPC {:+.2}%.",
        (mean(&size_growth) - 1.0) * 100.0,
        mean(&ipc_change) * 100.0
    )
    .unwrap();
    writeln!(
        out,
        "The paper's stance — keep duplication at RISC-like levels — is the judgment"
    )
    .unwrap();
    writeln!(
        out,
        "call this table informs: block enlargement vs the ROM bytes it costs."
    )
    .unwrap();
    out
}
