//! Per-dictionary decoder memoization for the warm `simulate` path.
//!
//! `Scheme::compress` rebuilds the codec's LUT/interleaved decode
//! tables from scratch on every call — fine for one-shot CLI runs,
//! wasteful for a daemon answering repeated `simulate` requests
//! against the same image. This cache keys codecs by
//! (scheme, program identity) and shares them across worker threads
//! (hence the `BlockCodec: Send + Sync` bound). Hits and misses are
//! published as `decode.codec_memo_hits` / `decode.codec_memo_misses`
//! so the win is observable from the metrics endpoint.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ccc_core::schemes::BlockCodec;
use ccc_telemetry::MetricsRegistry;

/// A memo of built codecs, keyed by a caller-supplied identity hash.
#[derive(Default)]
pub struct CodecCache {
    map: Mutex<HashMap<u128, Arc<dyn BlockCodec>>>,
}

impl CodecCache {
    /// An empty cache.
    pub fn new() -> CodecCache {
        CodecCache::default()
    }

    /// Number of memoized codecs.
    pub fn len(&self) -> usize {
        self.map.lock().expect("codec cache poisoned").len()
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the codec for `key`, building it with `build` on a miss.
    /// The lock is not held during `build`; if two threads race on the
    /// same fresh key, the first insert wins and the loser's build is
    /// discarded (the daemon's single-flight layer makes that race
    /// unreachable in practice).
    ///
    /// # Errors
    ///
    /// Whatever `build` fails with, on the miss path.
    pub fn get_or_build<E>(
        &self,
        registry: &MetricsRegistry,
        key: u128,
        build: impl FnOnce() -> Result<Arc<dyn BlockCodec>, E>,
    ) -> Result<Arc<dyn BlockCodec>, E> {
        if let Some(c) = self.map.lock().expect("codec cache poisoned").get(&key) {
            registry.counter("decode.codec_memo_hits").inc();
            return Ok(Arc::clone(c));
        }
        registry.counter("decode.codec_memo_misses").inc();
        let built = build()?;
        let mut map = self.map.lock().expect("codec cache poisoned");
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&built));
        Ok(Arc::clone(entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_by_key_and_counts_hits() {
        let registry = MetricsRegistry::new();
        let cache = CodecCache::new();
        let w = tinker_workloads::by_name("li").expect("li exists");
        let program = lego::compile(w.source(), &lego::Options::default()).expect("compiles");
        let build = || -> Result<Arc<dyn BlockCodec>, ()> {
            let out = crate::engine::scheme_by_name("full")
                .expect("full exists")
                .compress(&program)
                .expect("compresses");
            Ok(Arc::from(out.codec))
        };
        let a = cache.get_or_build(&registry, 42, build).unwrap();
        let b = cache.get_or_build(&registry, 42, build).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup reuses the built codec");
        assert_eq!(cache.len(), 1);
        assert_eq!(registry.counter("decode.codec_memo_misses").get(), 1);
        assert_eq!(registry.counter("decode.codec_memo_hits").get(), 1);
        // A different key builds again.
        cache.get_or_build(&registry, 43, build).unwrap();
        assert_eq!(registry.counter("decode.codec_memo_misses").get(), 2);
        assert_eq!(cache.len(), 2);
    }
}
