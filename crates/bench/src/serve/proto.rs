//! Wire protocol for `tepic-ccd` (DESIGN.md §17).
//!
//! Frames are a 4-byte big-endian length prefix followed by exactly
//! that many bytes of UTF-8 JSON. The framing layer is deliberately
//! dumb — no compression, no multiplexing — so a client in any
//! language is ~10 lines. Payloads above [`MAX_FRAME`] are rejected
//! before allocation; a clean close between frames reads as
//! `Ok(None)`, a close inside a frame as [`FrameError::Truncated`].
//!
//! Requests have a canonical serialization (fixed field order, every
//! field present) so `parse(canon(r)) == r` and `canon(parse(b)) == b`
//! for canonical `b` — the byte-exact round-trip the proptests pin.

use std::fmt;
use std::io::{self, Read, Write};

use ccc_telemetry::{json, parse_json, JsonValue};
use tepic_isa::wire::Fnv128;

/// Hard ceiling on a frame's payload length. Large enough for any
/// generated source plus an encoded image in hex; small enough that a
/// hostile length prefix cannot balloon memory.
pub const MAX_FRAME: usize = 8 << 20;

/// Why reading a frame failed.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed mid-frame (inside the header or the payload).
    Truncated,
    /// The length prefix exceeds [`MAX_FRAME`]; the payload was not read.
    Oversized(usize),
    /// An underlying I/O error (including read timeouts, which surface
    /// as `WouldBlock`/`TimedOut`).
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "connection closed mid-frame"),
            FrameError::Oversized(n) => {
                write!(f, "frame length {n} exceeds limit {MAX_FRAME}")
            }
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl FrameError {
    /// True when the error is a read timeout rather than a dead peer.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut
        )
    }
}

/// Writes one length-prefixed frame and flushes.
///
/// # Errors
///
/// Propagates the underlying write/flush error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean close at a frame boundary.
///
/// # Errors
///
/// [`FrameError::Truncated`] on close mid-frame, `Oversized` before
/// reading a payload whose declared length exceeds [`MAX_FRAME`], and
/// `Io` for everything else (timeouts included).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut hdr = [0u8; 4];
    // The first header byte distinguishes a clean close (Ok(0)) from a
    // close after partial data (Truncated below).
    match r.read(&mut hdr[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(FrameError::Io(e)),
    }
    fill(r, &mut hdr[1..])?;
    let len = u32::from_be_bytes(hdr) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized(len));
    }
    let mut buf = vec![0u8; len];
    fill(r, &mut buf)?;
    Ok(Some(buf))
}

fn fill(r: &mut impl Read, mut buf: &mut [u8]) -> Result<(), FrameError> {
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => buf = &mut buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// The four artifact-building operations a job request can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOp {
    /// Compile the source; respond with program shape + CRC.
    Compile,
    /// Compile + encode under a scheme; respond with the image bytes.
    Encode,
    /// Compile + trace + encode + fetch-simulate with full decode.
    Simulate,
    /// [`JobOp::Simulate`] under seeded decode fault injection.
    Faultsim,
}

impl JobOp {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobOp::Compile => "compile",
            JobOp::Encode => "encode",
            JobOp::Simulate => "simulate",
            JobOp::Faultsim => "faultsim",
        }
    }

    /// Inverse of [`JobOp::name`].
    pub fn by_name(name: &str) -> Option<JobOp> {
        Some(match name {
            "compile" => JobOp::Compile,
            "encode" => JobOp::Encode,
            "simulate" => JobOp::Simulate,
            "faultsim" => JobOp::Faultsim,
            _ => return None,
        })
    }
}

/// One artifact-building job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobRequest {
    /// Which pipeline to run.
    pub op: JobOp,
    /// Program name (cache-key component, mirrors the CLI's stem).
    pub name: String,
    /// Scheme name (ignored by `compile` but still part of the frame).
    pub scheme: String,
    /// Fault seed (meaningful for `faultsim` only).
    pub seed: u64,
    /// Program source text.
    pub source: String,
}

impl JobRequest {
    /// The single-flight key: two requests with equal keys are
    /// guaranteed to produce byte-identical responses, so the second
    /// may wait on the first's builder. Hashes exactly the fields the
    /// response depends on — `compile` ignores scheme and seed,
    /// `encode`/`simulate` ignore seed.
    pub fn flight_key(&self) -> u128 {
        let mut h = Fnv128::new();
        h.update_str(self.op.name());
        h.update_str(&self.name);
        h.update_str(&self.source);
        match self.op {
            JobOp::Compile => {}
            JobOp::Encode | JobOp::Simulate => {
                h.update_str(&self.scheme);
            }
            JobOp::Faultsim => {
                h.update_str(&self.scheme);
                h.update_u32(self.seed as u32);
                h.update_u32((self.seed >> 32) as u32);
            }
        }
        h.finish()
    }
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; response echoes `pong`.
    Ping,
    /// Dump the daemon's [`ccc_telemetry::MetricsRegistry`].
    Metrics,
    /// Begin graceful drain: finish queued jobs, then exit.
    Shutdown,
    /// An artifact-building job.
    Job(JobRequest),
}

impl Request {
    /// The canonical (byte-stable) serialization: fixed field order
    /// `op, name, scheme, seed, source`, every field present on job
    /// requests, no whitespace.
    pub fn canonical(&self) -> String {
        match self {
            Request::Ping => r#"{"op":"ping"}"#.to_string(),
            Request::Metrics => r#"{"op":"metrics"}"#.to_string(),
            Request::Shutdown => r#"{"op":"shutdown"}"#.to_string(),
            Request::Job(j) => format!(
                r#"{{"op":{},"name":{},"scheme":{},"seed":{},"source":{}}}"#,
                json::escape(j.op.name()),
                json::escape(&j.name),
                json::escape(&j.scheme),
                j.seed,
                json::escape(&j.source),
            ),
        }
    }

    /// Parses a request frame (field order is NOT significant on input).
    ///
    /// # Errors
    ///
    /// A typed [`WireError`]: `BadJson` for malformed text, `BadRequest`
    /// for well-formed JSON that is not a valid request.
    pub fn parse(payload: &[u8]) -> Result<Request, WireError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| WireError::new(ErrKind::BadJson, "payload is not UTF-8"))?;
        let v = parse_json(text)
            .map_err(|e| WireError::new(ErrKind::BadJson, format!("malformed JSON: {e}")))?;
        let op = v
            .get("op")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| WireError::new(ErrKind::BadRequest, "missing string field \"op\""))?;
        match op {
            "ping" => Ok(Request::Ping),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            _ => {
                let op = JobOp::by_name(op).ok_or_else(|| {
                    WireError::new(ErrKind::BadRequest, format!("unknown op {op:?}"))
                })?;
                let name = req_str(&v, "name")?;
                let source = req_str(&v, "source")?;
                let scheme = match v.get("scheme") {
                    None => "full".to_string(),
                    Some(s) => s
                        .as_str()
                        .ok_or_else(|| {
                            WireError::new(ErrKind::BadRequest, "field \"scheme\" must be a string")
                        })?
                        .to_string(),
                };
                let seed = match v.get("seed") {
                    None => 0,
                    Some(s) => {
                        let n = s.as_f64().ok_or_else(|| {
                            WireError::new(ErrKind::BadRequest, "field \"seed\" must be a number")
                        })?;
                        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
                            return Err(WireError::new(
                                ErrKind::BadRequest,
                                "field \"seed\" must be a non-negative integer",
                            ));
                        }
                        n as u64
                    }
                };
                Ok(Request::Job(JobRequest {
                    op,
                    name,
                    scheme,
                    seed,
                    source,
                }))
            }
        }
    }
}

fn req_str(v: &JsonValue, key: &str) -> Result<String, WireError> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| WireError::new(ErrKind::BadRequest, format!("missing string field {key:?}")))
}

/// The closed set of error kinds an error response can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrKind {
    /// The payload was not well-formed JSON (or not UTF-8).
    BadJson,
    /// Well-formed JSON that is not a valid request.
    BadRequest,
    /// The frame's declared length exceeded [`MAX_FRAME`].
    Oversized,
    /// Admission queue full — retry later (backpressure, not failure).
    Busy,
    /// The daemon is draining and accepts no new jobs.
    Draining,
    /// The scheme name matched no registered scheme.
    UnknownScheme,
    /// Compilation failed.
    CompileError,
    /// Scheme compression failed.
    CompressError,
    /// Anything else (a builder panic, say).
    Internal,
}

impl ErrKind {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            ErrKind::BadJson => "bad_json",
            ErrKind::BadRequest => "bad_request",
            ErrKind::Oversized => "oversized",
            ErrKind::Busy => "busy",
            ErrKind::Draining => "draining",
            ErrKind::UnknownScheme => "unknown_scheme",
            ErrKind::CompileError => "compile_error",
            ErrKind::CompressError => "compress_error",
            ErrKind::Internal => "internal",
        }
    }
}

/// A typed protocol-level error, rendered as
/// `{"ok":false,"error":{"kind":"...","detail":"..."}}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Which kind.
    pub kind: ErrKind,
    /// Human-readable detail.
    pub detail: String,
}

impl WireError {
    /// A new error.
    pub fn new(kind: ErrKind, detail: impl Into<String>) -> WireError {
        WireError {
            kind,
            detail: detail.into(),
        }
    }

    /// The response body.
    pub fn body(&self) -> String {
        format!(
            r#"{{"ok":false,"error":{{"kind":{},"detail":{}}}}}"#,
            json::escape(self.kind.name()),
            json::escape(&self.detail),
        )
    }
}

/// Lower-hex rendering of bytes.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Inverse of [`to_hex`]; `None` on odd length or non-hex bytes.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let b = s.as_bytes();
    let nib = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    (0..s.len() / 2)
        .map(|i| Some(nib(b[2 * i])? << 4 | nib(b[2 * i + 1])?))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(op: JobOp) -> JobRequest {
        JobRequest {
            op,
            name: "li".into(),
            scheme: "full".into(),
            seed: 7,
            source: "x = 1\n".into(),
        }
    }

    #[test]
    fn canonical_round_trips_every_variant() {
        for r in [
            Request::Ping,
            Request::Metrics,
            Request::Shutdown,
            Request::Job(job(JobOp::Compile)),
            Request::Job(job(JobOp::Encode)),
            Request::Job(job(JobOp::Simulate)),
            Request::Job(job(JobOp::Faultsim)),
        ] {
            let bytes = r.canonical().into_bytes();
            let back = Request::parse(&bytes).expect("canonical parses");
            assert_eq!(back, r);
            assert_eq!(back.canonical().into_bytes(), bytes);
        }
    }

    #[test]
    fn parse_is_field_order_insensitive() {
        let shuffled =
            br#"{"source":"x = 1\n","seed":7,"op":"encode","name":"li","scheme":"full"}"#;
        assert_eq!(
            Request::parse(shuffled).unwrap(),
            Request::Job(job(JobOp::Encode))
        );
    }

    #[test]
    fn parse_rejects_garbage_with_typed_errors() {
        let cases: &[(&[u8], ErrKind)] = &[
            (b"not json", ErrKind::BadJson),
            (b"\xff\xfe", ErrKind::BadJson),
            (b"{}", ErrKind::BadRequest),
            (br#"{"op":"transmogrify"}"#, ErrKind::BadRequest),
            (br#"{"op":"encode"}"#, ErrKind::BadRequest),
            (
                br#"{"op":"encode","name":"a","source":3}"#,
                ErrKind::BadRequest,
            ),
            (
                br#"{"op":"encode","name":"a","source":"s","seed":-1}"#,
                ErrKind::BadRequest,
            ),
            (
                br#"{"op":"encode","name":"a","source":"s","seed":1.5}"#,
                ErrKind::BadRequest,
            ),
        ];
        for (payload, kind) in cases {
            let e = Request::parse(payload).expect_err("must reject");
            assert_eq!(
                e.kind,
                *kind,
                "payload {:?}",
                String::from_utf8_lossy(payload)
            );
            // Every error renders as a parseable typed response.
            let body = e.body();
            let v = parse_json(&body).expect("error body is valid JSON");
            assert_eq!(
                v.get("error")
                    .and_then(|e| e.get("kind"))
                    .and_then(JsonValue::as_str),
                Some(kind.name())
            );
        }
    }

    #[test]
    fn flight_key_separates_ops_and_ignores_irrelevant_fields() {
        let base = job(JobOp::Compile);
        let mut other_scheme = base.clone();
        other_scheme.scheme = "byte".into();
        // compile ignores scheme and seed...
        assert_eq!(base.flight_key(), other_scheme.flight_key());
        // ...encode does not ignore scheme...
        let mut enc = base.clone();
        enc.op = JobOp::Encode;
        let mut enc_byte = other_scheme.clone();
        enc_byte.op = JobOp::Encode;
        assert_ne!(enc.flight_key(), enc_byte.flight_key());
        // ...and simulate ignores seed while faultsim does not.
        let mut sim_a = base.clone();
        sim_a.op = JobOp::Simulate;
        let mut sim_b = sim_a.clone();
        sim_b.seed = 8;
        assert_eq!(sim_a.flight_key(), sim_b.flight_key());
        sim_a.op = JobOp::Faultsim;
        sim_b.op = JobOp::Faultsim;
        assert_ne!(sim_a.flight_key(), sim_b.flight_key());
        // Distinct ops never share a key.
        let ops = [
            JobOp::Compile,
            JobOp::Encode,
            JobOp::Simulate,
            JobOp::Faultsim,
        ];
        for a in ops {
            for b in ops {
                if a != b {
                    let mut ja = base.clone();
                    ja.op = a;
                    let mut jb = base.clone();
                    jb.op = b;
                    assert_ne!(ja.flight_key(), jb.flight_key(), "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn frames_round_trip_and_read_sequentially() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"third").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"first"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"third"[..]));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_and_oversized_frames_are_typed() {
        // Close inside the header.
        let mut r: &[u8] = &[0, 0];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
        // Close inside the payload.
        let mut full = Vec::new();
        write_frame(&mut full, b"payload").unwrap();
        let mut r = &full[..full.len() - 2];
        assert!(matches!(read_frame(&mut r), Err(FrameError::Truncated)));
        // Oversized length prefix: payload bytes are never read.
        let huge = ((MAX_FRAME + 1) as u32).to_be_bytes();
        let mut r = &huge[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Oversized(n)) if n == MAX_FRAME + 1
        ));
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        assert!(from_hex("abc").is_none());
        assert!(from_hex("zz").is_none());
    }
}
