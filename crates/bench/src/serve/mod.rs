//! The `tepic-ccd` serving layer (DESIGN.md §17): a std-only TCP
//! daemon that accepts compile/encode/simulate/faultsim jobs over the
//! length-prefixed JSON protocol in [`proto`], shards them across
//! [`crate::engine::pool`], and serves warm artifacts straight from the
//! engine's content-addressed cache.
//!
//! The perf core is two mechanisms:
//!
//! * **Single-flight coalescing** — concurrent requests with equal
//!   [`proto::JobRequest::flight_key`]s share one builder; followers
//!   block on the leader's [`FlightSlot`] and receive the identical
//!   response bytes. A cold-key stampede runs exactly one build.
//! * **Bounded admission** — at most `queue_depth` jobs wait for the
//!   dispatcher; past that the daemon answers a typed `busy` error
//!   immediately instead of queueing unboundedly.
//!
//! Everything is observable through the `metrics` op, which dumps the
//! daemon's [`MetricsRegistry`] (serve counters, queue-depth and
//! per-op latency histograms, engine cache hit/miss gauges).

pub mod codecs;
pub mod proto;

use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use ccc_core::schemes::BlockCodec;
use ccc_core::{crc32, encoded_to_bytes, Failpoints};
use ccc_telemetry::{json, MetricsRegistry};
use ifetch_sim::{
    simulate, simulate_decoded, simulate_decoded_injected, DecodeStats, FetchConfig, FetchResult,
};
use tepic_isa::wire::Fnv128;

use crate::engine::{pool, scheme_by_name, Engine};
use codecs::CodecCache;
use proto::{read_frame, write_frame, ErrKind, FrameError, JobOp, JobRequest, Request, WireError};

/// Decode-fault mix used by `faultsim` jobs (seeded per request).
const FAULTSIM_SPEC: &str = "decode.lut:0.3:error";

/// Server tuning knobs.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker parallelism for the dispatch pool (and batch width).
    pub jobs: usize,
    /// Admission-queue depth beyond which jobs get `busy`.
    pub queue_depth: usize,
    /// Per-connection read timeout (an idle connection past this is
    /// closed; `None` blocks forever).
    pub read_timeout: Option<Duration>,
    /// Per-connection write timeout.
    pub write_timeout: Option<Duration>,
    /// Test hook: when set, the dispatcher blocks before running each
    /// batch until the gate opens. Lets tests pin jobs "in build" to
    /// observe coalescing and backpressure deterministically.
    pub gate: Option<Arc<DispatchGate>>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: crate::engine::default_jobs(),
            queue_depth: 64,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            gate: None,
        }
    }
}

/// A latch the dispatcher waits on before executing each batch —
/// closed at construction, opened once, never re-closes.
#[derive(Default)]
pub struct DispatchGate {
    open: Mutex<bool>,
    cv: Condvar,
}

impl DispatchGate {
    /// A closed gate.
    pub fn closed() -> Arc<DispatchGate> {
        Arc::new(DispatchGate::default())
    }

    /// Opens the gate, releasing the dispatcher.
    pub fn open(&self) {
        *self.open.lock().expect("gate poisoned") = true;
        self.cv.notify_all();
    }

    fn wait(&self) {
        let mut open = self.open.lock().expect("gate poisoned");
        while !*open {
            open = self.cv.wait(open).expect("gate poisoned");
        }
    }
}

/// One in-flight build: the leader fills it once, every coalesced
/// follower clones the filled response.
struct FlightSlot {
    done: Mutex<Option<Result<String, WireError>>>,
    cv: Condvar,
}

impl FlightSlot {
    fn new() -> Arc<FlightSlot> {
        Arc::new(FlightSlot {
            done: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn fill(&self, result: Result<String, WireError>) {
        let mut done = self.done.lock().expect("flight poisoned");
        *done = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<String, WireError> {
        let mut done = self.done.lock().expect("flight poisoned");
        loop {
            if let Some(r) = done.as_ref() {
                return r.clone();
            }
            done = self.cv.wait(done).expect("flight poisoned");
        }
    }
}

/// One admitted job waiting for the dispatcher.
struct QueuedJob {
    req: JobRequest,
    slot: Arc<FlightSlot>,
    key: u128,
}

/// State shared by the accept loop, connection handlers and dispatcher.
struct Shared {
    engine: Engine,
    registry: MetricsRegistry,
    codecs: CodecCache,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    flights: Mutex<HashMap<u128, Arc<FlightSlot>>>,
    draining: AtomicBool,
    cfg: ServeConfig,
    local_addr: SocketAddr,
}

/// A running server: the bound address plus join/drain control.
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds `cfg.addr`, spawns the accept loop and dispatcher, and
    /// returns immediately.
    ///
    /// # Errors
    ///
    /// The bind failure, if any.
    pub fn start(engine: Engine, cfg: ServeConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine,
            registry: MetricsRegistry::new(),
            codecs: CodecCache::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            flights: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            cfg,
            local_addr,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("ccd-accept".into())
                .spawn(move || accept_loop(&shared, &listener))
                .expect("spawn accept loop")
        };
        let dispatcher = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("ccd-dispatch".into())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawn dispatcher")
        };
        Ok(ServerHandle {
            shared,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The daemon's metrics registry (shared with every handler).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.shared.registry
    }

    /// Begins a graceful drain, exactly as a `shutdown` request would.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Waits for the drain to complete: the accept loop exits, the
    /// dispatcher finishes every admitted job, and the listener closes.
    /// Per-connection handler threads are detached and exit on their
    /// own once their client closes or times out.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

impl Shared {
    fn begin_drain(&self) {
        {
            // Under the queue lock so the draining flag and the queue
            // contents change atomically with respect to admission and
            // the dispatcher's exit check — no job can be admitted
            // after drain starts yet never run.
            let _q = self.queue.lock().expect("queue poisoned");
            self.draining.store(true, Ordering::SeqCst);
        }
        self.queue_cv.notify_all();
        if let Some(gate) = &self.cfg.gate {
            gate.open();
        }
        // Unblock the accept loop's blocking accept().
        let _ = TcpStream::connect(self.local_addr);
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.draining() {
                return;
            }
            continue;
        };
        if shared.draining() {
            // New connections are refused during drain (the wake-up
            // connection from begin_drain lands here too).
            return;
        }
        shared.registry.counter("serve.connections").inc();
        let shared = Arc::clone(shared);
        // Handlers are detached: they hold only an Arc<Shared> and exit
        // when their client closes, errors, or idles past the timeout.
        let _ = thread::Builder::new()
            .name("ccd-conn".into())
            .spawn(move || handle_connection(&shared, stream));
    }
}

fn dispatch_loop(shared: &Arc<Shared>) {
    loop {
        let batch: Vec<QueuedJob> = {
            let mut q = shared.queue.lock().expect("queue poisoned");
            loop {
                if !q.is_empty() {
                    let n = q.len().min(shared.cfg.jobs.max(1));
                    break q.drain(..n).collect();
                }
                if shared.draining() {
                    return;
                }
                q = shared.queue_cv.wait(q).expect("queue poisoned");
            }
        };
        if let Some(gate) = &shared.cfg.gate {
            gate.wait();
        }
        let tasks: Vec<Box<dyn FnOnce() + Send>> = batch
            .into_iter()
            .map(|job| {
                let shared = Arc::clone(shared);
                Box::new(move || {
                    shared.registry.counter("serve.jobs_executed").inc();
                    let result = execute_job(&shared, &job.req);
                    // Deregister the flight BEFORE filling the slot:
                    // the first filled response a client observes
                    // means its key is already free, so a follow-up
                    // request starts a fresh (cache-warm) flight
                    // instead of joining a completed one. Waiters
                    // already parked on the slot still get the result.
                    shared
                        .flights
                        .lock()
                        .expect("flights poisoned")
                        .remove(&job.key);
                    job.slot.fill(result);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        pool::run_tasks(shared.cfg.jobs.max(1), tasks);
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(shared.cfg.read_timeout);
    let _ = stream.set_write_timeout(shared.cfg.write_timeout);
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e @ FrameError::Oversized(_)) => {
                // The payload is still on the wire; we cannot resync,
                // so answer with the typed error and close.
                shared.registry.counter("serve.bad_frames").inc();
                let err = WireError::new(ErrKind::Oversized, e.to_string());
                let _ = write_frame(&mut stream, err.body().as_bytes());
                return;
            }
            Err(FrameError::Truncated) => {
                shared.registry.counter("serve.bad_frames").inc();
                return;
            }
            Err(e) if e.is_timeout() => return,
            Err(FrameError::Io(_)) => return,
        };
        shared.registry.counter("serve.requests").inc();
        let start = Instant::now();
        let (op_label, body) = match Request::parse(&payload) {
            Err(e) => {
                shared.registry.counter("serve.bad_frames").inc();
                ("error", e.body())
            }
            Ok(Request::Ping) => (
                "ping",
                r#"{"ok":true,"op":"ping","msg":"pong"}"#.to_string(),
            ),
            Ok(Request::Metrics) => ("metrics", metrics_body(shared)),
            Ok(Request::Shutdown) => {
                // Ack BEFORE starting the drain: once the drain begins,
                // `tepic-ccd`'s main may exit (killing this detached
                // handler) the moment the dispatcher runs dry, and the
                // requester must still see its acknowledgement.
                let body = r#"{"ok":true,"op":"shutdown","draining":true}"#;
                let sent = write_frame(&mut stream, body.as_bytes());
                shared.begin_drain();
                if sent.is_err() {
                    return;
                }
                continue;
            }
            Ok(Request::Job(req)) => {
                let label = req.op.name();
                let body = match admit_job(shared, req) {
                    Ok(body) => body,
                    Err(e) => e.body(),
                };
                (label, body)
            }
        };
        shared
            .registry
            .histogram(&format!("serve.latency_ns.{op_label}"), &LATENCY_BOUNDS)
            .observe(start.elapsed().as_nanos() as u64);
        if write_frame(&mut stream, body.as_bytes()).is_err() {
            return;
        }
    }
}

/// Latency histogram bounds: 1 µs to ~4.3 s in powers of four.
const LATENCY_BOUNDS: [u64; 12] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
    4_294_967_000,
];

/// Admission: join an existing flight (coalesced), or claim the flight
/// and enqueue — unless the queue is full (`busy`) or the daemon is
/// draining (`draining`). Blocks until the flight's result is filled.
fn admit_job(shared: &Arc<Shared>, req: JobRequest) -> Result<String, WireError> {
    if req.op != JobOp::Compile && scheme_by_name(&req.scheme).is_none() {
        return Err(WireError::new(
            ErrKind::UnknownScheme,
            format!("unknown scheme {:?}", req.scheme),
        ));
    }
    let key = req.flight_key();
    let slot = {
        let mut flights = shared.flights.lock().expect("flights poisoned");
        if let Some(slot) = flights.get(&key) {
            shared.registry.counter("serve.coalesced_waits").inc();
            Arc::clone(slot)
        } else {
            let mut q = shared.queue.lock().expect("queue poisoned");
            if shared.draining() {
                shared.registry.counter("serve.draining_rejections").inc();
                return Err(WireError::new(
                    ErrKind::Draining,
                    "daemon is draining; no new jobs accepted",
                ));
            }
            if q.len() >= shared.cfg.queue_depth {
                shared.registry.counter("serve.busy_rejections").inc();
                return Err(WireError::new(
                    ErrKind::Busy,
                    format!("admission queue full ({} jobs)", q.len()),
                ));
            }
            let slot = FlightSlot::new();
            flights.insert(key, Arc::clone(&slot));
            q.push_back(QueuedJob {
                req,
                slot: Arc::clone(&slot),
                key,
            });
            shared
                .registry
                .histogram("serve.queue_depth", &QUEUE_BOUNDS)
                .observe(q.len() as u64);
            shared.queue_cv.notify_all();
            slot
        }
    };
    slot.wait()
}

/// Queue-depth histogram bounds.
const QUEUE_BOUNDS: [u64; 9] = [0, 1, 2, 4, 8, 16, 32, 64, 128];

/// The `metrics` response: engine cache counters refreshed into
/// `serve.engine.*` gauges (gauges are set, not added, so repeated
/// metrics requests don't double-count), then the whole registry as
/// JSON.
fn metrics_body(shared: &Arc<Shared>) -> String {
    let snap = shared.engine.snapshot();
    for (name, v) in [
        ("serve.engine.program_hits", snap.program_hits),
        ("serve.engine.program_misses", snap.program_misses),
        ("serve.engine.trace_hits", snap.trace_hits),
        ("serve.engine.trace_misses", snap.trace_misses),
        ("serve.engine.image_hits", snap.image_hits),
        ("serve.engine.image_misses", snap.image_misses),
        ("serve.engine.corrupt_entries", snap.corrupt_entries),
    ] {
        shared.registry.gauge(name).set(v as i64);
    }
    shared
        .registry
        .gauge("serve.codecs_memoized")
        .set(shared.codecs.len() as i64);
    shared
        .registry
        .gauge("serve.queue_len")
        .set(shared.queue.lock().expect("queue poisoned").len() as i64);
    format!(
        r#"{{"ok":true,"op":"metrics","metrics":{}}}"#,
        shared.registry.to_json()
    )
}

/// Runs one job to completion on a pool worker and renders the
/// response body. Deterministic for a given flight key — coalesced
/// followers receive these exact bytes.
fn execute_job(shared: &Arc<Shared>, req: &JobRequest) -> Result<String, WireError> {
    let opts = lego::Options::default();
    let engine = &shared.engine;
    let program = engine
        .program(&req.name, &req.source, &opts)
        .map_err(|e| WireError::new(ErrKind::CompileError, e.to_string()))?;
    match req.op {
        JobOp::Compile => {
            let code = program.code_bytes();
            Ok(format!(
                r#"{{"ok":true,"op":"compile","name":{},"num_blocks":{},"num_ops":{},"code_bytes":{},"code_crc":{}}}"#,
                json::escape(&req.name),
                program.num_blocks(),
                program.num_ops(),
                code.len(),
                crc32(&code),
            ))
        }
        JobOp::Encode => {
            let image = engine
                .image(&req.name, &req.source, &opts, &req.scheme, &program)
                .map_err(|e| WireError::new(ErrKind::CompressError, e.to_string()))?;
            let bytes = encoded_to_bytes(&image);
            Ok(format!(
                r#"{{"ok":true,"op":"encode","name":{},"scheme":{},"total_bytes":{},"image_crc":{},"image_hex":{}}}"#,
                json::escape(&req.name),
                json::escape(&req.scheme),
                bytes.len(),
                crc32(&bytes),
                json::escape(&proto::to_hex(&bytes)),
            ))
        }
        JobOp::Simulate | JobOp::Faultsim => {
            let trace = engine
                .trace(&req.name, &req.source, &opts, &program)
                .map_err(|e| WireError::new(ErrKind::CompileError, e.to_string()))?;
            let image = engine
                .image(&req.name, &req.source, &opts, &req.scheme, &program)
                .map_err(|e| WireError::new(ErrKind::CompressError, e.to_string()))?;
            // Base and Tailored fetch re-laid-out words directly — no
            // decoder on the hit path (mirrors the CLI's trace cmd).
            let (result, dstats) = match req.scheme.as_str() {
                "base" | "tailored" => {
                    let cfg = if req.scheme == "base" {
                        FetchConfig::base()
                    } else {
                        FetchConfig::tailored()
                    };
                    (
                        simulate(&program, &image, &trace, &cfg),
                        DecodeStats::default(),
                    )
                }
                scheme => {
                    let codec = memo_codec(shared, req, scheme, &program)?;
                    let cfg = FetchConfig::compressed();
                    if req.op == JobOp::Faultsim {
                        let fp = Failpoints::from_spec(FAULTSIM_SPEC, req.seed)
                            .map_err(|e| WireError::new(ErrKind::Internal, e.to_string()))?;
                        simulate_decoded_injected(
                            &program,
                            &image,
                            &trace,
                            &cfg,
                            codec.as_ref(),
                            &fp,
                        )
                    } else {
                        simulate_decoded(&program, &image, &trace, &cfg, codec.as_ref())
                    }
                }
            };
            dstats.record_metrics(&shared.registry);
            Ok(render_sim(req, &result, &dstats))
        }
    }
}

/// Looks up (or builds and memoizes) the decode codec for a
/// (scheme, program) pair — the satellite-3 warm path.
fn memo_codec(
    shared: &Arc<Shared>,
    req: &JobRequest,
    scheme: &str,
    program: &tepic_isa::Program,
) -> Result<Arc<dyn BlockCodec>, WireError> {
    let mut h = Fnv128::new();
    h.update_str(scheme);
    h.update_str(&req.name);
    h.update_str(&req.source);
    shared
        .codecs
        .get_or_build(&shared.registry, h.finish(), || {
            let out = scheme_by_name(scheme)
                .ok_or_else(|| {
                    WireError::new(ErrKind::UnknownScheme, format!("unknown scheme {scheme:?}"))
                })?
                .compress(program)
                .map_err(|e| WireError::new(ErrKind::CompressError, e.to_string()))?;
            Ok(Arc::from(out.codec))
        })
}

fn render_sim(req: &JobRequest, result: &FetchResult, dstats: &DecodeStats) -> String {
    format!(
        concat!(
            r#"{{"ok":true,"op":{},"name":{},"scheme":{},"seed":{},"#,
            r#""cycles":{},"ops":{},"pred_correct":{},"pred_wrong":{},"#,
            r#""cache_hits":{},"cache_misses":{},"bus_beats":{},"bus_bit_flips":{},"#,
            r#""blocks_decoded":{},"ops_decoded":{},"stall_bits":{},"#,
            r#""decode_errors":{},"long_fallbacks":{},"reference_fallbacks":{}}}"#
        ),
        json::escape(req.op.name()),
        json::escape(&req.name),
        json::escape(&req.scheme),
        req.seed,
        result.cycles,
        result.ops,
        result.pred_correct,
        result.pred_wrong,
        result.cache_hits,
        result.cache_misses,
        result.bus_beats,
        result.bus_bit_flips,
        dstats.blocks_decoded,
        dstats.ops_decoded,
        dstats.stall_bits,
        dstats.decode_errors,
        dstats.long_fallbacks,
        dstats.reference_fallbacks,
    )
}
