//! Criterion benchmarks over every pipeline stage: compilation, Huffman
//! table construction, each compression scheme, emulation and fetch
//! simulation. Complements the figure-reproduction binaries with a
//! performance view of the tooling itself.

use ccc_core::schemes::{
    base::encode_base, byte::ByteScheme, full::FullScheme, stream::StreamScheme,
    tailored::TailoredScheme, Scheme,
};
use criterion::{criterion_group, criterion_main, Criterion};
use ifetch_sim::{simulate, FetchConfig};
use std::hint::black_box;
use std::time::Duration;
use tinker_huffman::{CodeBook, Dictionary};

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    for name in ["compress", "go", "li"] {
        let w = tinker_workloads::by_name(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| black_box(lego::compile(w.source(), &lego::Options::default()).unwrap()))
        });
    }
    g.finish();
}

fn bench_huffman(c: &mut Criterion) {
    let w = tinker_workloads::by_name("go").unwrap();
    let p = w.compile().unwrap();
    let words = p.op_words();
    let dict: Dictionary<u64> = words.iter().copied().collect();
    let mut g = c.benchmark_group("huffman");
    g.bench_function("build_bounded_book", |b| {
        b.iter(|| black_box(CodeBook::bounded_from_freqs(dict.freqs(), 24).unwrap()))
    });
    let book = CodeBook::bounded_from_freqs(dict.freqs(), 24).unwrap();
    g.bench_function("encode_image", |b| {
        b.iter(|| {
            let mut wtr = tinker_huffman::BitWriter::new();
            for word in &words {
                book.encode_into(dict.id_of(word).unwrap(), &mut wtr);
            }
            black_box(wtr.into_bytes())
        })
    });
    let mut wtr = tinker_huffman::BitWriter::new();
    for word in &words {
        book.encode_into(dict.id_of(word).unwrap(), &mut wtr);
    }
    let bytes = wtr.into_bytes();
    let dec = book.decoder();
    g.bench_function("decode_image", |b| {
        b.iter(|| {
            let mut r = tinker_huffman::BitReader::new(&bytes);
            black_box(dec.decode_n(&mut r, words.len()).unwrap())
        })
    });
    g.finish();
}

fn bench_schemes(c: &mut Criterion) {
    let w = tinker_workloads::by_name("go").unwrap();
    let p = w.compile().unwrap();
    let mut g = c.benchmark_group("schemes");
    g.bench_function("byte", |b| {
        b.iter(|| black_box(ByteScheme::default().compress(&p).unwrap()))
    });
    g.bench_function("stream", |b| {
        b.iter(|| black_box(StreamScheme::named("stream").unwrap().compress(&p).unwrap()))
    });
    g.bench_function("full", |b| {
        b.iter(|| black_box(FullScheme::default().compress(&p).unwrap()))
    });
    g.bench_function("tailored", |b| {
        b.iter(|| black_box(TailoredScheme.compress(&p).unwrap()))
    });
    g.finish();
}

fn bench_emulate(c: &mut Criterion) {
    let w = tinker_workloads::by_name("compress").unwrap();
    let p = w.compile().unwrap();
    let mut g = c.benchmark_group("emulate");
    g.bench_function("compress_workload", |b| {
        b.iter(|| {
            black_box(
                yula::Emulator::new(&p)
                    .run(&yula::Limits::default())
                    .unwrap()
                    .stats
                    .ops,
            )
        })
    });
    g.finish();
}

fn bench_fetch_sim(c: &mut Criterion) {
    let w = tinker_workloads::by_name("compress").unwrap();
    let (p, run) = w.compile_and_run().unwrap();
    let base_img = encode_base(&p);
    let full = FullScheme::default().compress(&p).unwrap().image;
    let mut g = c.benchmark_group("fetch_sim");
    g.bench_function("base", |b| {
        b.iter(|| black_box(simulate(&p, &base_img, &run.trace, &FetchConfig::base()).cycles))
    });
    g.bench_function("compressed", |b| {
        b.iter(|| black_box(simulate(&p, &full, &run.trace, &FetchConfig::compressed()).cycles))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_compile, bench_huffman, bench_schemes, bench_emulate, bench_fetch_sim
}
criterion_main!(benches);
