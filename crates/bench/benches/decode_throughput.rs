//! Decode-kernel throughput: the word-at-a-time [`BitReader`] +
//! two-level-LUT [`LutDecoder`] fast path against the bit-serial
//! [`CanonicalDecoder`] reference, plus the throughput tier of
//! DESIGN.md §15 — the [`InterleavedDecoder`] round-robining many
//! stream cursors and the [`BlockCodec::decode_batch`] whole-image
//! path — over each Huffman scheme's real tables and symbol streams.
//!
//! Workloads: the `go` benchmark plus a seeded `ccc-workgen` tiny-tier
//! corpus (`CCC_DECODE_SEED`, default 42), so throughput numbers are
//! not one-workload artifacts. `--lut-bits <n[,n..]>` sweeps the
//! first-level table size (8–16); the default sweep is `8,11,16`.
//!
//! Panels time with `bench_best` (best sample, not mean): host
//! interference only adds time, so the minimum estimates the kernel's
//! own cost and keeps the regression gate stable on busy machines.
//!
//! Besides the usual per-iteration prints, this bench writes
//! `results/decode_throughput.txt` (human table) and
//! `results/BENCH_decode.json` (machine-readable) and exits non-zero
//! when a regression floor fails:
//!
//! * the LUT path slower than the reference on the byte scheme;
//! * the stream scheme's interleaved *compressed* throughput below
//!   `CCC_DECODE_FLOOR` × its sequential-LUT throughput. Issue 8 aims
//!   for 4×; the multi-symbol kernel measures 2.9–3.1× on the
//!   reference machine (a 2.1 GHz Xeon VM), so the default floor is
//!   set one noise notch under that — 2.5 full runs, 2.2 smoke — to
//!   gate regressions rather than aspiration;
//! * the stream scheme's aggregate *decoded-output* bandwidth (the
//!   4-byte symbols the interleaved kernel stores, summed over all
//!   lanes) below `CCC_DECODE_AGG_FLOOR` MB/s (default 1000 — the
//!   Issue-8 "≥ 1 GB/s aggregate" headline; measured ≈ 2.4 GB/s).
//!
//! Set `CCC_DECODE_SMOKE=1` for a short smoke measurement.

use ccc_bench::engine::cache::write_atomic;
use ccc_bench::history::{self, SentinelConfig};
use ccc_core::schemes::stream::StreamConfig;
use ccc_core::schemes::{byte::ByteScheme, full::FullScheme, pair::PairScheme};
use ccc_core::schemes::{decode_blocks, stream::StreamScheme, BlockCodec, Scheme};
use ccc_telemetry::ledger::{self, Fingerprint};
use criterion::Criterion;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Duration;
use tepic_isa::Program;
use tinker_huffman::{
    BitReader, BitWriter, CanonicalDecoder, CodeBook, DecodeCounters, Dictionary,
    InterleavedDecoder, LutDecoder, StreamLane, PIPE,
};

/// One scheme's decode workload over one program: its Huffman tables,
/// the symbol sequence in decode order (`order[i]` names the table
/// `syms[i]` was coded with — streams interleave several tables per
/// op), and the encoded bitstream.
struct DecodeWorkload {
    books: Vec<CodeBook>,
    order: Vec<u32>,
    syms: Vec<u32>,
    bytes: Vec<u8>,
}

impl DecodeWorkload {
    fn new(books: Vec<CodeBook>, order: Vec<u32>, syms: Vec<u32>) -> Self {
        assert_eq!(order.len(), syms.len());
        let mut w = BitWriter::new();
        for (&bi, &s) in order.iter().zip(&syms) {
            books[bi as usize].try_encode_into(s, &mut w).unwrap();
        }
        DecodeWorkload {
            books,
            order,
            syms,
            bytes: w.into_bytes(),
        }
    }

    /// Single-table schemes decode whole blocks via `decode_n` (the
    /// codecs' production path); interleaved-table schemes replay the
    /// per-symbol table order exactly as their codecs do.
    fn decode_reference(&self, decs: &[CanonicalDecoder]) -> u64 {
        let mut r = BitReader::new(&self.bytes);
        if decs.len() == 1 {
            return checksum(&decs[0].decode_n(&mut r, self.syms.len()).unwrap());
        }
        let mut acc = 0u64;
        for &bi in &self.order {
            acc = acc.wrapping_add(decs[bi as usize].decode(&mut r).unwrap() as u64);
        }
        acc
    }

    fn decode_lut(&self, decs: &[LutDecoder]) -> u64 {
        let mut r = BitReader::new(&self.bytes);
        if decs.len() == 1 {
            return checksum(&decs[0].decode_n(&mut r, self.syms.len()).unwrap());
        }
        let mut acc = 0u64;
        for &bi in &self.order {
            acc = acc.wrapping_add(decs[bi as usize].decode(&mut r).unwrap() as u64);
        }
        acc
    }
}

fn checksum(syms: &[u32]) -> u64 {
    syms.iter().fold(0u64, |a, &s| a.wrapping_add(s as u64))
}

/// The interleaved panel's unit: each per-table symbol subsequence of a
/// [`DecodeWorkload`] re-encoded into contiguous per-lane bitstreams —
/// the compiler-side layout the throughput tier assumes (one cursor
/// per stream) — split into chunks so every scheme presents about
/// [`TARGET_LANES`] concurrent cursors.
struct LaneSet {
    inter: InterleavedDecoder,
    lanes: Vec<LaneBuf>,
}

struct LaneBuf {
    bytes: Vec<u8>,
    syms: Vec<u32>,
    table: u32,
}

const TARGET_LANES: usize = 16;

fn build_lanes(w: &DecodeWorkload) -> LaneSet {
    let nt = w.books.len();
    // Keep the lane count a multiple of the kernel's pipeline width so
    // no lane is left to a partial (single-cursor) group.
    let mut chunks = (TARGET_LANES / nt).max(1);
    while !(nt * chunks).is_multiple_of(PIPE) {
        chunks += 1;
    }
    let mut lanes = Vec::new();
    for t in 0..nt {
        let tsyms: Vec<u32> = w
            .order
            .iter()
            .zip(&w.syms)
            .filter(|&(&o, _)| o == t as u32)
            .map(|(_, &s)| s)
            .collect();
        if tsyms.is_empty() {
            continue;
        }
        let per = tsyms.len().div_ceil(chunks).max(1);
        for chunk in tsyms.chunks(per) {
            let mut bw = BitWriter::new();
            for &s in chunk {
                w.books[t].try_encode_into(s, &mut bw).unwrap();
            }
            lanes.push(LaneBuf {
                bytes: bw.into_bytes(),
                syms: chunk.to_vec(),
                table: t as u32,
            });
        }
    }
    LaneSet {
        inter: InterleavedDecoder::new(w.books.iter().map(CodeBook::lut_decoder).collect()),
        lanes,
    }
}

impl LaneSet {
    fn specs(&self) -> Vec<StreamLane<'_>> {
        self.lanes
            .iter()
            .map(|l| StreamLane {
                bytes: &l.bytes,
                start_bit: 0,
                symbols: l.syms.len(),
                table: Some(l.table),
            })
            .collect()
    }

    fn decode(&self) -> u64 {
        let mut counts = DecodeCounters::default();
        let results = self.inter.decode_streams(&self.specs(), &mut counts);
        results
            .iter()
            .flat_map(|r| r.syms.iter())
            .fold(0u64, |a, &s| a.wrapping_add(s as u64))
    }

    fn bytes(&self) -> usize {
        self.lanes.iter().map(|l| l.bytes.len()).sum()
    }

    /// Differential check: every lane must reproduce its source chunk.
    fn verify(&self) {
        let mut counts = DecodeCounters::default();
        let results = self.inter.decode_streams(&self.specs(), &mut counts);
        for (lane, res) in self.lanes.iter().zip(&results) {
            assert!(res.err.is_none(), "interleaved lane errored: {:?}", res.err);
            assert_eq!(res.syms, lane.syms, "interleaved lane diverged");
        }
    }
}

/// The batch panel's unit: a program compressed by the real
/// [`Scheme`], decoded whole-image through [`BlockCodec::decode_batch`].
struct BatchLoad {
    image: ccc_core::EncodedProgram,
    codec: Box<dyn BlockCodec>,
    ops: Vec<usize>,
}

fn build_batch(scheme: &dyn Scheme, p: &Program) -> BatchLoad {
    let out = scheme.compress(p).unwrap();
    BatchLoad {
        image: out.image,
        codec: out.codec,
        ops: p.blocks().iter().map(|b| b.num_ops).collect(),
    }
}

impl BatchLoad {
    fn decode(&self) -> u64 {
        let mut counts = DecodeCounters::default();
        let results = decode_blocks(self.codec.as_ref(), &self.image, &self.ops, &mut counts);
        results.iter().fold(0u64, |a, r| {
            r.as_ref()
                .unwrap()
                .iter()
                .fold(a, |a, &w| a.wrapping_add(w))
        })
    }

    fn verify(&self, p: &Program) {
        let mut counts = DecodeCounters::default();
        let results = decode_blocks(self.codec.as_ref(), &self.image, &self.ops, &mut counts);
        for (b, r) in results.iter().enumerate() {
            let words: Vec<u64> = p.block_ops(b).iter().map(|o| o.encode()).collect();
            assert_eq!(r.as_ref().unwrap(), &words, "batch decode diverged");
        }
    }
}

/// Byte scheme: one table over the code bytes, `max_code_len` 10.
fn byte_workload(p: &Program) -> DecodeWorkload {
    let code = p.code_bytes();
    let mut freqs = [0u64; 256];
    for &b in &code {
        freqs[b as usize] += 1;
    }
    let book = CodeBook::bounded_from_freqs(&freqs, 10).unwrap();
    let syms: Vec<u32> = code.iter().map(|&b| b as u32).collect();
    let order = vec![0u32; syms.len()];
    DecodeWorkload::new(vec![book], order, syms)
}

/// Stream schemes: one table per field stream, interleaved per op.
fn stream_workload(p: &Program, name: &'static str) -> DecodeWorkload {
    let config = StreamConfig::by_name(name).unwrap();
    let words = p.op_words();
    let ns = config.num_streams();
    let mut dicts: Vec<Dictionary<u64>> = vec![Dictionary::new(); ns];
    for &w in &words {
        for (si, dict) in dicts.iter_mut().enumerate() {
            let (off, width) = config.stream_bits(si);
            dict.record((w >> off) & ((1u64 << width) - 1));
        }
    }
    let books: Vec<CodeBook> = dicts
        .iter()
        .map(|d| CodeBook::bounded_from_freqs(d.freqs(), 20).unwrap())
        .collect();
    let mut order = Vec::with_capacity(words.len() * ns);
    let mut syms = Vec::with_capacity(words.len() * ns);
    for &w in &words {
        for (si, dict) in dicts.iter().enumerate() {
            let (off, width) = config.stream_bits(si);
            order.push(si as u32);
            syms.push(dict.id_of(&((w >> off) & ((1u64 << width) - 1))).unwrap());
        }
    }
    DecodeWorkload::new(books, order, syms)
}

/// Full scheme: one table over whole 40-bit op words, `max_code_len` 24.
fn full_workload(p: &Program) -> DecodeWorkload {
    let words = p.op_words();
    let dict: Dictionary<u64> = words.iter().copied().collect();
    let book = CodeBook::bounded_from_freqs(dict.freqs(), 24).unwrap();
    let syms: Vec<u32> = words.iter().map(|w| dict.id_of(w).unwrap()).collect();
    let order = vec![0u32; syms.len()];
    DecodeWorkload::new(vec![book], order, syms)
}

/// Pair scheme: non-overlapping op pairs per block (table 0) plus odd
/// trailing singles (table 1), `max_code_len` 28.
fn pair_workload(p: &Program) -> DecodeWorkload {
    let mut pairs: Dictionary<(u64, u64)> = Dictionary::new();
    let mut singles: Dictionary<u64> = Dictionary::new();
    let block_words: Vec<Vec<u64>> = (0..p.num_blocks())
        .map(|b| p.block_ops(b).iter().map(|o| o.encode()).collect())
        .collect();
    for words in &block_words {
        let mut i = 0;
        while i + 1 < words.len() {
            pairs.record((words[i], words[i + 1]));
            i += 2;
        }
        if i < words.len() {
            singles.record(words[i]);
        }
    }
    let pair_book = CodeBook::bounded_from_freqs(pairs.freqs(), 28).unwrap();
    let single_book = CodeBook::bounded_from_freqs(singles.freqs(), 28).unwrap();
    let mut order = Vec::new();
    let mut syms = Vec::new();
    for words in &block_words {
        let mut i = 0;
        while i + 1 < words.len() {
            order.push(0);
            syms.push(pairs.id_of(&(words[i], words[i + 1])).unwrap());
            i += 2;
        }
        if i < words.len() {
            order.push(1);
            syms.push(singles.id_of(&words[i]).unwrap());
        }
    }
    DecodeWorkload::new(vec![pair_book, single_book], order, syms)
}

fn scheme_for(name: &'static str) -> Box<dyn Scheme> {
    match name {
        "byte" => Box::new(ByteScheme::default()),
        "full" => Box::new(FullScheme::default()),
        "pair" => Box::new(PairScheme::default()),
        other => Box::new(StreamScheme::named(other).unwrap()),
    }
}

/// One scheme measured across every workload program: the kernel
/// workloads plus the interleaved lane sets and real-image batch loads.
struct SchemeRow {
    scheme: &'static str,
    loads: Vec<DecodeWorkload>,
    lanes: Vec<LaneSet>,
    batches: Vec<BatchLoad>,
}

fn build_row(scheme: &'static str, programs: &[(String, Program)]) -> SchemeRow {
    let loads: Vec<DecodeWorkload> = programs
        .iter()
        .map(|(_, p)| match scheme {
            "byte" => byte_workload(p),
            "full" => full_workload(p),
            "pair" => pair_workload(p),
            other => stream_workload(p, other),
        })
        .collect();
    let lanes = loads.iter().map(build_lanes).collect();
    let sch = scheme_for(scheme);
    let batches = programs
        .iter()
        .map(|(_, p)| {
            let b = build_batch(sch.as_ref(), p);
            b.verify(p);
            b
        })
        .collect();
    SchemeRow {
        scheme,
        loads,
        lanes,
        batches,
    }
}

struct Measurement {
    scheme: &'static str,
    symbols: usize,
    compressed_bytes: usize,
    ref_ns: f64,
    lut_ns: f64,
    num_lanes: usize,
    lane_bytes: usize,
    inter_ns: f64,
    batch_blocks: usize,
    batch_ops: usize,
    batch_bytes: usize,
    batch_ns: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.ref_ns / self.lut_ns.max(1e-9)
    }
    fn sym_per_s(&self, ns: f64) -> f64 {
        self.symbols as f64 / (ns * 1e-9)
    }
    fn mb_per_s(&self, ns: f64) -> f64 {
        self.compressed_bytes as f64 / (ns * 1e-9) / 1e6
    }
    fn inter_mb_per_s(&self) -> f64 {
        self.lane_bytes as f64 / (self.inter_ns * 1e-9) / 1e6
    }
    fn inter_sym_per_s(&self) -> f64 {
        self.symbols as f64 / (self.inter_ns * 1e-9)
    }
    /// Aggregate decoded-output bandwidth: the 4-byte symbols the
    /// interleaved kernel stores, summed across all lanes.
    fn inter_decoded_mb_per_s(&self) -> f64 {
        (self.symbols * 4) as f64 / (self.inter_ns * 1e-9) / 1e6
    }
    /// The Issue-8 headline: interleaved over sequential-LUT compressed
    /// throughput (both sides normalized by their own byte totals).
    fn inter_over_lut(&self) -> f64 {
        self.inter_mb_per_s() / self.mb_per_s(self.lut_ns).max(1e-9)
    }
    fn batch_mb_per_s(&self) -> f64 {
        self.batch_bytes as f64 / (self.batch_ns * 1e-9) / 1e6
    }
}

fn measure(c: &mut Criterion, row: &SchemeRow) -> Measurement {
    let refs: Vec<Vec<CanonicalDecoder>> = row
        .loads
        .iter()
        .map(|w| w.books.iter().map(CodeBook::decoder).collect())
        .collect();
    let luts: Vec<Vec<LutDecoder>> = row
        .loads
        .iter()
        .map(|w| w.books.iter().map(CodeBook::lut_decoder).collect())
        .collect();
    // Every path must observe the exact same symbol sequence.
    for (i, w) in row.loads.iter().enumerate() {
        assert_eq!(
            w.decode_reference(&refs[i]),
            w.decode_lut(&luts[i]),
            "{}: LUT decode diverged from reference",
            row.scheme
        );
    }
    for set in &row.lanes {
        set.verify();
    }
    let mut g = c.benchmark_group(row.scheme);
    let ref_ns = g.bench_best("reference", |b| {
        b.iter(|| {
            let mut a = 0u64;
            for (i, w) in row.loads.iter().enumerate() {
                a = a.wrapping_add(black_box(w.decode_reference(&refs[i])));
            }
            a
        })
    });
    let lut_ns = g.bench_best("lut", |b| {
        b.iter(|| {
            let mut a = 0u64;
            for (i, w) in row.loads.iter().enumerate() {
                a = a.wrapping_add(black_box(w.decode_lut(&luts[i])));
            }
            a
        })
    });
    let inter_ns = g.bench_best("interleaved", |b| {
        b.iter(|| {
            let mut a = 0u64;
            for set in &row.lanes {
                a = a.wrapping_add(black_box(set.decode()));
            }
            a
        })
    });
    let batch_ns = g.bench_best("batch", |b| {
        b.iter(|| {
            let mut a = 0u64;
            for load in &row.batches {
                a = a.wrapping_add(black_box(load.decode()));
            }
            a
        })
    });
    g.finish();
    Measurement {
        scheme: row.scheme,
        symbols: row.loads.iter().map(|w| w.syms.len()).sum(),
        compressed_bytes: row.loads.iter().map(|w| w.bytes.len()).sum(),
        ref_ns,
        lut_ns,
        num_lanes: row.lanes.iter().map(|s| s.lanes.len()).sum(),
        lane_bytes: row.lanes.iter().map(LaneSet::bytes).sum(),
        inter_ns,
        batch_blocks: row.batches.iter().map(|b| b.ops.len()).sum(),
        batch_ops: row
            .batches
            .iter()
            .map(|b| b.ops.iter().sum::<usize>())
            .sum(),
        batch_bytes: row.batches.iter().map(|b| b.image.bytes.len()).sum(),
        batch_ns,
    }
}

/// One `--lut-bits` sweep point: sequential LUT throughput per scheme
/// with the first-level table rebuilt at `lut_bits`.
struct SweepPoint {
    lut_bits: u32,
    mb_per_sec: Vec<(&'static str, f64)>,
}

fn sweep_lut_bits(c: &mut Criterion, rows: &[SchemeRow], sizes: &[u32]) -> Vec<SweepPoint> {
    sizes
        .iter()
        .map(|&bits| {
            let mut g = c.benchmark_group(&format!("lut_bits_{bits}"));
            let mb = rows
                .iter()
                .map(|row| {
                    let luts: Vec<Vec<LutDecoder>> = row
                        .loads
                        .iter()
                        .map(|w| {
                            w.books
                                .iter()
                                .map(|b| LutDecoder::with_lut_bits(b, bits))
                                .collect()
                        })
                        .collect();
                    let ns = g.bench_best(row.scheme, |b| {
                        b.iter(|| {
                            let mut a = 0u64;
                            for (i, w) in row.loads.iter().enumerate() {
                                a = a.wrapping_add(black_box(w.decode_lut(&luts[i])));
                            }
                            a
                        })
                    });
                    let bytes: usize = row.loads.iter().map(|w| w.bytes.len()).sum();
                    (row.scheme, bytes as f64 / (ns * 1e-9) / 1e6)
                })
                .collect();
            g.finish();
            SweepPoint {
                lut_bits: bits,
                mb_per_sec: mb,
            }
        })
        .collect()
}

fn simd_active() -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        return std::arch::is_x86_feature_detected!("avx2");
    }
    #[allow(unreachable_code)]
    false
}

fn render_table(rows: &[Measurement], names: &[String]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Decode kernel throughput — workloads [{}], reference vs LUT vs interleaved vs batch",
        names.join(", ")
    );
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>10} {:>12} {:>12} {:>12} {:>6} {:>12} {:>8} {:>12} {:>8}",
        "scheme",
        "symbols",
        "bytes",
        "ref MB/s",
        "lut MB/s",
        "speedup",
        "lanes",
        "inter MB/s",
        "x lut",
        "dec MB/s",
        "batch MB/s"
    );
    for m in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>10} {:>12.1} {:>12.1} {:>11.2}x {:>6} {:>12.1} {:>7.2}x {:>12.0} {:>12.1}",
            m.scheme,
            m.symbols,
            m.compressed_bytes,
            m.mb_per_s(m.ref_ns),
            m.mb_per_s(m.lut_ns),
            m.speedup(),
            m.num_lanes,
            m.inter_mb_per_s(),
            m.inter_over_lut(),
            m.inter_decoded_mb_per_s(),
            m.batch_mb_per_s()
        );
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    rows: &[Measurement],
    sweep: &[SweepPoint],
    names: &[String],
    seed: u64,
    smoke: bool,
    floor: f64,
    stream_ratio: f64,
    agg_floor: f64,
    stream_decoded: f64,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"decode_throughput\",");
    let quoted: Vec<String> = names.iter().map(|n| format!("\"{n}\"")).collect();
    let _ = writeln!(out, "  \"workloads\": [{}],", quoted.join(", "));
    let _ = writeln!(
        out,
        "  \"corpus\": {{ \"seed\": {seed}, \"tier\": \"tiny\", \"flavor\": \"tepic\" }},"
    );
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"simd\": {{ \"compiled\": {}, \"active\": {} }},",
        cfg!(feature = "simd"),
        simd_active()
    );
    let _ = writeln!(
        out,
        "  \"lut_bits_default\": {},",
        tinker_huffman::lut::DEFAULT_LUT_BITS
    );
    let _ = writeln!(
        out,
        "  \"floor\": {{ \"stream_interleaved_over_lut\": {floor}, \"measured\": {stream_ratio:.3}, \
         \"aggregate_decoded_mb_per_sec\": {agg_floor}, \"measured_decoded\": {stream_decoded:.1} }},"
    );
    let _ = writeln!(out, "  \"schemes\": [");
    for (i, m) in rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"scheme\": \"{}\",", m.scheme);
        let _ = writeln!(out, "      \"symbols\": {},", m.symbols);
        let _ = writeln!(out, "      \"compressed_bytes\": {},", m.compressed_bytes);
        for (label, ns) in [("reference", m.ref_ns), ("lut", m.lut_ns)] {
            let _ = writeln!(out, "      \"{label}\": {{");
            let _ = writeln!(out, "        \"ns_per_pass\": {ns:.1},");
            let _ = writeln!(out, "        \"symbols_per_sec\": {:.0},", m.sym_per_s(ns));
            let _ = writeln!(out, "        \"mb_per_sec\": {:.3}", m.mb_per_s(ns));
            let _ = writeln!(out, "      }},");
        }
        let _ = writeln!(out, "      \"interleaved\": {{");
        let _ = writeln!(out, "        \"lanes\": {},", m.num_lanes);
        let _ = writeln!(out, "        \"lane_bytes\": {},", m.lane_bytes);
        let _ = writeln!(out, "        \"ns_per_pass\": {:.1},", m.inter_ns);
        let _ = writeln!(
            out,
            "        \"symbols_per_sec\": {:.0},",
            m.inter_sym_per_s()
        );
        let _ = writeln!(out, "        \"mb_per_sec\": {:.3},", m.inter_mb_per_s());
        let _ = writeln!(
            out,
            "        \"decoded_mb_per_sec\": {:.3},",
            m.inter_decoded_mb_per_s()
        );
        let _ = writeln!(out, "        \"speedup_vs_lut\": {:.3}", m.inter_over_lut());
        let _ = writeln!(out, "      }},");
        let _ = writeln!(out, "      \"batch\": {{");
        let _ = writeln!(out, "        \"blocks\": {},", m.batch_blocks);
        let _ = writeln!(out, "        \"ops\": {},", m.batch_ops);
        let _ = writeln!(out, "        \"image_bytes\": {},", m.batch_bytes);
        let _ = writeln!(out, "        \"ns_per_pass\": {:.1},", m.batch_ns);
        let _ = writeln!(out, "        \"mb_per_sec\": {:.3}", m.batch_mb_per_s());
        let _ = writeln!(out, "      }},");
        let _ = writeln!(out, "      \"speedup\": {:.3}", m.speedup());
        let _ = writeln!(out, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"lut_bits_sweep\": [");
    for (i, pt) in sweep.iter().enumerate() {
        let per: Vec<String> = pt
            .mb_per_sec
            .iter()
            .map(|(s, mb)| format!("\"{s}\": {mb:.3}"))
            .collect();
        let _ = writeln!(
            out,
            "    {{ \"lut_bits\": {}, \"mb_per_sec\": {{ {} }} }}{}",
            pt.lut_bits,
            per.join(", "),
            if i + 1 < sweep.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// Parses `--lut-bits n[,n..]` from the bench argv; values clamp to the
/// 8–16 first-level range. Default sweep: 8, the default 11, and 16.
fn lut_bits_arg() -> Vec<u32> {
    let args: Vec<String> = std::env::args().collect();
    let mut sizes = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let val = if args[i] == "--lut-bits" {
            i += 1;
            args.get(i).cloned()
        } else {
            args[i].strip_prefix("--lut-bits=").map(|v| v.to_string())
        };
        if let Some(v) = val {
            for part in v.split(',') {
                if let Ok(n) = part.trim().parse::<u32>() {
                    sizes.push(n.clamp(8, 16));
                }
            }
        }
        i += 1;
    }
    if sizes.is_empty() {
        sizes = vec![8, tinker_huffman::lut::DEFAULT_LUT_BITS, 16];
    }
    sizes.dedup();
    sizes
}

fn main() {
    let t0 = std::time::Instant::now();
    let smoke = std::env::var("CCC_DECODE_SMOKE").is_ok_and(|v| v == "1");
    let mut c = if smoke {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(200))
    } else {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
    };

    // Workload programs: `go` plus the seeded tiny-tier corpus.
    let seed = std::env::var("CCC_DECODE_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(42);
    let mut programs: Vec<(String, Program)> = vec![(
        "go".to_string(),
        tinker_workloads::by_name("go").unwrap().compile().unwrap(),
    )];
    let corpus =
        ccc_workgen::generate_corpus(seed, ccc_workgen::Tier::Tiny, ccc_workgen::Flavor::Tepic)
            .unwrap();
    for gp in &corpus.programs {
        let p = lego::compile(&gp.source, &lego::Options::default()).unwrap();
        programs.push((gp.name.clone(), p));
    }
    let names: Vec<String> = programs.iter().map(|(n, _)| n.clone()).collect();

    let rows: Vec<SchemeRow> = ["byte", "stream", "stream_1", "full", "pair"]
        .iter()
        .map(|s| build_row(s, &programs))
        .collect();
    let measured: Vec<Measurement> = rows.iter().map(|r| measure(&mut c, r)).collect();

    // The lut-bits sweep gets a shorter budget: it is a shape scan, not
    // a headline number.
    let mut sweep_c = if smoke {
        Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(100))
    } else {
        Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(500))
    };
    let sweep = sweep_lut_bits(&mut sweep_c, &rows, &lut_bits_arg());

    // Regression floors. CCC_DECODE_FLOOR overrides the stream scheme's
    // interleaved/lut compressed-throughput ratio floor; the defaults
    // sit one noise notch under the 2.9-3.1x the multi-symbol kernel
    // measures here (see the module doc). CCC_DECODE_AGG_FLOOR gates
    // the aggregate decoded-output bandwidth in MB/s (Issue 8's
    // ">= 1 GB/s aggregate"; measured ~2.4 GB/s).
    let env_floor = std::env::var("CCC_DECODE_FLOOR")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(if smoke { 2.2 } else { 2.5 });
    let env_agg_floor = std::env::var("CCC_DECODE_AGG_FLOOR")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(1000.0);

    // Ledger-derived floors (DESIGN.md §16): the best same-fingerprint
    // historical value for each gated sample, derated by the sentinel
    // band. The env/default constants above stay as the absolute
    // backstop — the effective floor is the max of both, so history can
    // only *raise* the bar, never lower it.
    // Smoke and full measurements have different sample budgets, so
    // they keep separate ledger groups.
    let bench_name = if smoke {
        "decode_throughput/smoke"
    } else {
        "decode_throughput/full"
    };
    let features = if cfg!(feature = "simd") { "simd" } else { "" };
    let fp = Fingerprint::current(features, tinker_huffman::lut::DEFAULT_LUT_BITS as u64);
    let cfg = SentinelConfig::default();
    // `cargo bench` runs with the package dir as cwd, so a relative
    // ledger path is re-anchored at the workspace root — the same file
    // the CLI writes.
    let ledger_file = ledger::ledger_path().map(|p| {
        if p.is_absolute() {
            p
        } else {
            std::path::Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(p)
        }
    });
    let hist = ledger_file
        .as_deref()
        .and_then(|p| ledger::load(p).ok())
        .map(|o| o.records)
        .unwrap_or_default();
    let derived =
        |sample: &str| history::derived_floor(&hist, &fp, bench_name, sample, &cfg).unwrap_or(0.0);
    let floor = env_floor.max(derived("stream_inter_over_lut_ratio"));
    let agg_floor = env_agg_floor.max(derived("stream_decoded_mb_s"));
    if floor > env_floor || agg_floor > env_agg_floor {
        println!(
            "ledger-derived floors active: ratio {floor:.2}x (backstop {env_floor:.2}x), \
             aggregate {agg_floor:.0} MB/s (backstop {env_agg_floor:.0} MB/s)"
        );
    }
    let stream = measured.iter().find(|m| m.scheme == "stream").unwrap();
    let stream_ratio = stream.inter_over_lut();

    let table = render_table(&measured, &names);
    print!("\n{table}");
    let results = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    write_atomic(format!("{results}/decode_throughput.txt"), table.as_bytes()).unwrap();
    write_atomic(
        format!("{results}/BENCH_decode.json"),
        render_json(
            &measured,
            &sweep,
            &names,
            seed,
            smoke,
            floor,
            stream_ratio,
            agg_floor,
            stream.inter_decoded_mb_per_s(),
        )
        .as_bytes(),
    )
    .unwrap();
    println!("wrote results/decode_throughput.txt and results/BENCH_decode.json");

    // Gate 1: on the byte scheme every code fits the first-level LUT,
    // so a slower LUT path means the fast path has regressed.
    let byte = measured.iter().find(|m| m.scheme == "byte").unwrap();
    if byte.speedup() < 1.0 {
        eprintln!(
            "REGRESSION: LUT decode slower than reference on byte scheme ({:.2}x)",
            byte.speedup()
        );
        std::process::exit(1);
    }
    // Gate 2: the throughput tier must hold its floor on the stream
    // scheme (the many-cursor case it exists for).
    if stream_ratio < floor {
        eprintln!(
            "REGRESSION: stream interleaved decode at {:.2}x LUT throughput, floor {floor:.2}x \
             ({:.1} vs {:.1} MB/s)",
            stream_ratio,
            stream.inter_mb_per_s(),
            stream.mb_per_s(stream.lut_ns)
        );
        std::process::exit(1);
    }
    // Gate 3: the Issue-8 headline — aggregate decoded-output
    // bandwidth across all stream cursors.
    if stream.inter_decoded_mb_per_s() < agg_floor {
        eprintln!(
            "REGRESSION: stream interleaved decoded-output bandwidth {:.0} MB/s, \
             floor {agg_floor:.0} MB/s",
            stream.inter_decoded_mb_per_s()
        );
        std::process::exit(1);
    }

    // All gates held: append this run to the ledger so `perf --check`
    // and the next run's derived floors see it. Only passing runs land
    // here — a degenerate measurement must not become the baseline.
    let mut rec = history::base_record(
        bench_name,
        seed,
        features,
        tinker_huffman::lut::DEFAULT_LUT_BITS as u64,
        t0.elapsed().as_nanos() as u64,
    );
    rec.samples
        .insert("stream_inter_mb_s".to_string(), stream.inter_mb_per_s());
    rec.samples
        .insert("stream_inter_over_lut_ratio".to_string(), stream_ratio);
    rec.samples.insert(
        "stream_decoded_mb_s".to_string(),
        stream.inter_decoded_mb_per_s(),
    );
    for m in &measured {
        rec.samples
            .insert(format!("{}_lut_mb_s", m.scheme), m.mb_per_s(m.lut_ns));
        rec.samples
            .insert(format!("{}_speedup_ratio", m.scheme), m.speedup());
    }
    if let Some(path) = &ledger_file {
        if let Err(e) = ledger::append(path, &rec) {
            eprintln!("warning: ledger append to {} failed: {e}", path.display());
        }
    }
}
