//! Decode-kernel throughput: the word-at-a-time [`BitReader`] +
//! two-level-LUT [`LutDecoder`] fast path against the bit-serial
//! [`CanonicalDecoder`] reference, over each Huffman scheme's real
//! tables and symbol streams (built from the `go` workload exactly as
//! the schemes build them).
//!
//! Besides the usual per-iteration prints, this bench writes
//! `results/decode_throughput.txt` (human table) and
//! `results/BENCH_decode.json` (machine-readable) and exits non-zero if
//! the LUT path is slower than the reference on the byte scheme — the
//! regression gate `scripts/check.sh` and CI rely on. Set
//! `CCC_DECODE_SMOKE=1` for a short smoke measurement.

use ccc_core::schemes::stream::StreamConfig;
use criterion::Criterion;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Duration;
use tepic_isa::Program;
use tinker_huffman::{BitReader, BitWriter, CanonicalDecoder, CodeBook, Dictionary, LutDecoder};

/// One scheme's decode workload: its Huffman tables, the symbol
/// sequence in decode order (`order[i]` names the table `syms[i]` was
/// coded with — streams interleave several tables per op), and the
/// encoded bitstream.
struct DecodeWorkload {
    name: &'static str,
    books: Vec<CodeBook>,
    order: Vec<u32>,
    syms: Vec<u32>,
    bytes: Vec<u8>,
}

impl DecodeWorkload {
    fn new(name: &'static str, books: Vec<CodeBook>, order: Vec<u32>, syms: Vec<u32>) -> Self {
        assert_eq!(order.len(), syms.len());
        let mut w = BitWriter::new();
        for (&bi, &s) in order.iter().zip(&syms) {
            books[bi as usize].try_encode_into(s, &mut w).unwrap();
        }
        DecodeWorkload {
            name,
            books,
            order,
            syms,
            bytes: w.into_bytes(),
        }
    }

    /// Single-table schemes decode whole blocks via `decode_n` (the
    /// codecs' production path); interleaved-table schemes replay the
    /// per-symbol table order exactly as their codecs do.
    fn decode_reference(&self, decs: &[CanonicalDecoder]) -> u64 {
        let mut r = BitReader::new(&self.bytes);
        if decs.len() == 1 {
            return checksum(&decs[0].decode_n(&mut r, self.syms.len()).unwrap());
        }
        let mut acc = 0u64;
        for &bi in &self.order {
            acc = acc.wrapping_add(decs[bi as usize].decode(&mut r).unwrap() as u64);
        }
        acc
    }

    fn decode_lut(&self, decs: &[LutDecoder]) -> u64 {
        let mut r = BitReader::new(&self.bytes);
        if decs.len() == 1 {
            return checksum(&decs[0].decode_n(&mut r, self.syms.len()).unwrap());
        }
        let mut acc = 0u64;
        for &bi in &self.order {
            acc = acc.wrapping_add(decs[bi as usize].decode(&mut r).unwrap() as u64);
        }
        acc
    }
}

fn checksum(syms: &[u32]) -> u64 {
    syms.iter().fold(0u64, |a, &s| a.wrapping_add(s as u64))
}

/// Byte scheme: one table over the code bytes, `max_code_len` 10.
fn byte_workload(p: &Program) -> DecodeWorkload {
    let code = p.code_bytes();
    let mut freqs = [0u64; 256];
    for &b in &code {
        freqs[b as usize] += 1;
    }
    let book = CodeBook::bounded_from_freqs(&freqs, 10).unwrap();
    let syms: Vec<u32> = code.iter().map(|&b| b as u32).collect();
    let order = vec![0u32; syms.len()];
    DecodeWorkload::new("byte", vec![book], order, syms)
}

/// Stream schemes: one table per field stream, interleaved per op.
fn stream_workload(p: &Program, name: &'static str) -> DecodeWorkload {
    let config = StreamConfig::by_name(name).unwrap();
    let words = p.op_words();
    let ns = config.num_streams();
    let mut dicts: Vec<Dictionary<u64>> = vec![Dictionary::new(); ns];
    for &w in &words {
        for (si, dict) in dicts.iter_mut().enumerate() {
            let (off, width) = config.stream_bits(si);
            dict.record((w >> off) & ((1u64 << width) - 1));
        }
    }
    let books: Vec<CodeBook> = dicts
        .iter()
        .map(|d| CodeBook::bounded_from_freqs(d.freqs(), 20).unwrap())
        .collect();
    let mut order = Vec::with_capacity(words.len() * ns);
    let mut syms = Vec::with_capacity(words.len() * ns);
    for &w in &words {
        for (si, dict) in dicts.iter().enumerate() {
            let (off, width) = config.stream_bits(si);
            order.push(si as u32);
            syms.push(dict.id_of(&((w >> off) & ((1u64 << width) - 1))).unwrap());
        }
    }
    DecodeWorkload::new(name, books, order, syms)
}

/// Full scheme: one table over whole 40-bit op words, `max_code_len` 24.
fn full_workload(p: &Program) -> DecodeWorkload {
    let words = p.op_words();
    let dict: Dictionary<u64> = words.iter().copied().collect();
    let book = CodeBook::bounded_from_freqs(dict.freqs(), 24).unwrap();
    let syms: Vec<u32> = words.iter().map(|w| dict.id_of(w).unwrap()).collect();
    let order = vec![0u32; syms.len()];
    DecodeWorkload::new("full", vec![book], order, syms)
}

/// Pair scheme: non-overlapping op pairs per block (table 0) plus odd
/// trailing singles (table 1), `max_code_len` 28.
fn pair_workload(p: &Program) -> DecodeWorkload {
    let mut pairs: Dictionary<(u64, u64)> = Dictionary::new();
    let mut singles: Dictionary<u64> = Dictionary::new();
    let block_words: Vec<Vec<u64>> = (0..p.num_blocks())
        .map(|b| p.block_ops(b).iter().map(|o| o.encode()).collect())
        .collect();
    for words in &block_words {
        let mut i = 0;
        while i + 1 < words.len() {
            pairs.record((words[i], words[i + 1]));
            i += 2;
        }
        if i < words.len() {
            singles.record(words[i]);
        }
    }
    let pair_book = CodeBook::bounded_from_freqs(pairs.freqs(), 28).unwrap();
    let single_book = CodeBook::bounded_from_freqs(singles.freqs(), 28).unwrap();
    let mut order = Vec::new();
    let mut syms = Vec::new();
    for words in &block_words {
        let mut i = 0;
        while i + 1 < words.len() {
            order.push(0);
            syms.push(pairs.id_of(&(words[i], words[i + 1])).unwrap());
            i += 2;
        }
        if i < words.len() {
            order.push(1);
            syms.push(singles.id_of(&words[i]).unwrap());
        }
    }
    DecodeWorkload::new("pair", vec![pair_book, single_book], order, syms)
}

struct Measurement {
    scheme: &'static str,
    symbols: usize,
    compressed_bytes: usize,
    ref_ns: f64,
    lut_ns: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.ref_ns / self.lut_ns.max(1e-9)
    }
    fn sym_per_s(&self, ns: f64) -> f64 {
        self.symbols as f64 / (ns * 1e-9)
    }
    fn mb_per_s(&self, ns: f64) -> f64 {
        self.compressed_bytes as f64 / (ns * 1e-9) / 1e6
    }
}

fn measure(c: &mut Criterion, w: &DecodeWorkload) -> Measurement {
    let refs: Vec<CanonicalDecoder> = w.books.iter().map(CodeBook::decoder).collect();
    let luts: Vec<LutDecoder> = w.books.iter().map(CodeBook::lut_decoder).collect();
    // Both paths must observe the exact same symbol sequence.
    assert_eq!(
        w.decode_reference(&refs),
        w.decode_lut(&luts),
        "{}: LUT decode diverged from reference",
        w.name
    );
    let mut g = c.benchmark_group(w.name);
    let ref_ns = g.bench_measured("reference", |b| {
        b.iter(|| black_box(w.decode_reference(&refs)))
    });
    let lut_ns = g.bench_measured("lut", |b| b.iter(|| black_box(w.decode_lut(&luts))));
    g.finish();
    Measurement {
        scheme: w.name,
        symbols: w.syms.len(),
        compressed_bytes: w.bytes.len(),
        ref_ns,
        lut_ns,
    }
}

fn render_table(rows: &[Measurement]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Decode kernel throughput — go workload, reference (bit-serial) vs LUT fast path"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>9} {:>10} {:>13} {:>13} {:>12} {:>12} {:>8}",
        "scheme", "symbols", "bytes", "ref Msym/s", "lut Msym/s", "ref MB/s", "lut MB/s", "speedup"
    );
    for m in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>9} {:>10} {:>13.1} {:>13.1} {:>12.1} {:>12.1} {:>7.2}x",
            m.scheme,
            m.symbols,
            m.compressed_bytes,
            m.sym_per_s(m.ref_ns) / 1e6,
            m.sym_per_s(m.lut_ns) / 1e6,
            m.mb_per_s(m.ref_ns),
            m.mb_per_s(m.lut_ns),
            m.speedup()
        );
    }
    out
}

fn render_json(rows: &[Measurement], smoke: bool) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"decode_throughput\",");
    let _ = writeln!(out, "  \"workload\": \"go\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"lut_bits_default\": {},",
        tinker_huffman::lut::DEFAULT_LUT_BITS
    );
    let _ = writeln!(out, "  \"schemes\": [");
    for (i, m) in rows.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"scheme\": \"{}\",", m.scheme);
        let _ = writeln!(out, "      \"symbols\": {},", m.symbols);
        let _ = writeln!(out, "      \"compressed_bytes\": {},", m.compressed_bytes);
        for (label, ns) in [("reference", m.ref_ns), ("lut", m.lut_ns)] {
            let _ = writeln!(out, "      \"{label}\": {{");
            let _ = writeln!(out, "        \"ns_per_pass\": {ns:.1},");
            let _ = writeln!(out, "        \"symbols_per_sec\": {:.0},", m.sym_per_s(ns));
            let _ = writeln!(out, "        \"mb_per_sec\": {:.3}", m.mb_per_s(ns));
            let _ = writeln!(out, "      }},");
        }
        let _ = writeln!(out, "      \"speedup\": {:.3}", m.speedup());
        let _ = writeln!(out, "    }}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

fn main() {
    let smoke = std::env::var("CCC_DECODE_SMOKE").is_ok_and(|v| v == "1");
    let mut c = if smoke {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(200))
    } else {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_secs(2))
    };

    let p = tinker_workloads::by_name("go").unwrap().compile().unwrap();
    let workloads = [
        byte_workload(&p),
        stream_workload(&p, "stream"),
        stream_workload(&p, "stream_1"),
        full_workload(&p),
        pair_workload(&p),
    ];
    let rows: Vec<Measurement> = workloads.iter().map(|w| measure(&mut c, w)).collect();

    let table = render_table(&rows);
    print!("\n{table}");
    let results = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results");
    std::fs::create_dir_all(results).unwrap();
    std::fs::write(format!("{results}/decode_throughput.txt"), &table).unwrap();
    std::fs::write(
        format!("{results}/BENCH_decode.json"),
        render_json(&rows, smoke),
    )
    .unwrap();
    println!("wrote results/decode_throughput.txt and results/BENCH_decode.json");

    // Regression gate: on the byte scheme every code fits the first-level
    // LUT, so a slower LUT path means the fast path has regressed.
    let byte = rows.iter().find(|m| m.scheme == "byte").unwrap();
    if byte.speedup() < 1.0 {
        eprintln!(
            "REGRESSION: LUT decode slower than reference on byte scheme ({:.2}x)",
            byte.speedup()
        );
        std::process::exit(1);
    }
}
