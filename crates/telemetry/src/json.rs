//! A minimal JSON value model, parser and string escaper.
//!
//! Just enough JSON for the telemetry layer to validate its own output:
//! the exporters emit JSON by hand (stable field order, no dependency),
//! and this parser proves the emitted text is well-formed and
//! structurally complete — the round-trip the trace smoke gate and the
//! proptests run. Numbers parse as `f64`, which is exact for every
//! count the exporters emit below 2^53.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers are exact below 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (keys sorted; duplicate keys keep the last value).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements of an array; `None` elsewhere.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The numeric value; `None` elsewhere.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value; `None` elsewhere.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What was wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Escapes `s` as a JSON string literal including the quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first malformed construct.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not emitted by our exporters;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError {
                at: start,
                msg: "bad number",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny"},"d":null,"e":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        assert_eq!(v.get("e"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn escape_round_trips() {
        for s in [
            "plain",
            "qu\"ote",
            "back\\slash",
            "tab\there",
            "nl\nctl\u{1}",
        ] {
            let parsed = parse_json(&escape(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1..2",
            "\"unterminated",
            "{}x",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_carries_position() {
        let e = parse_json("[1, ?]").unwrap_err();
        assert_eq!(e.at, 4);
    }
}
