//! The append-only run ledger: one CRC-framed JSONL record per
//! pipeline run, durable across processes.
//!
//! Every `tepic-cc` subcommand and bench binary appends one
//! [`LedgerRecord`] to `results/history/ledger.jsonl` (override with
//! `CCC_LEDGER`, disable with `CCC_NO_LEDGER=1`). A record carries the
//! host/build [`Fingerprint`], the seed, the wall-clock, the full
//! counter snapshot of the run's [`MetricsRegistry`], per-stage span
//! rollups and a small set of named scalar samples (the measurements
//! the regression sentinel compares across runs).
//!
//! ## Frame format
//!
//! Each line is `{"crc":<u32>,"rec":{...}}` where `crc` is the IEEE
//! CRC-32 over the exact bytes of the `rec` value. The reader
//! re-extracts those bytes (the writer controls the serialization, so
//! the `,"rec":` marker is unambiguous), recomputes the CRC and skips
//! the line on mismatch. A torn tail line — the partial write of a
//! killed process — fails either the JSON parse or the CRC and is
//! *skipped, never fatal*: the ledger degrades by one record, not by
//! the whole history. Appends are a single `write` on an
//! `O_APPEND` handle, which POSIX keeps atomic for these line sizes in
//! practice; the CRC frame catches the rest.
//!
//! Integer values are exact below 2^53 (the in-crate JSON model is
//! f64-backed); nanosecond wall-clocks fit with two orders of magnitude
//! to spare.

use crate::json::{self, JsonValue};
use crate::registry::MetricsRegistry;
use crate::spans::StageRollup;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Current record schema version.
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

/// Default ledger path, relative to the repo root.
pub const DEFAULT_LEDGER_PATH: &str = "results/history/ledger.jsonl";

/// IEEE CRC-32 (same polynomial as `ccc_core::integrity::crc32`,
/// reimplemented here because the dependency arrow points the other
/// way: ccc-core depends on this crate).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// The host/build identity a record was measured under. Two records are
/// comparable only when these match: CPU features, compiled cargo
/// features, LUT depth and build profile all shift the numbers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Fingerprint {
    /// `std::env::consts::OS`.
    pub os: String,
    /// `std::env::consts::ARCH`.
    pub arch: String,
    /// Runtime-detected CPU features relevant to the decode kernels,
    /// `+`-joined (`avx2+bmi2`), or `baseline`.
    pub cpu: String,
    /// Cargo feature set the measuring binary was built with
    /// (caller-supplied: features are per-crate and invisible across
    /// crate boundaries), or empty.
    pub features: String,
    /// `debug` or `release`.
    pub build: String,
    /// Decoder LUT depth in bits the run used.
    pub lut_bits: u64,
    /// Short git revision, or `unknown`. Recorded for provenance; NOT
    /// part of [`Fingerprint::key`], so baselines survive commits.
    pub git_rev: String,
}

impl Fingerprint {
    /// Detects the current host/build identity.
    pub fn current(features: &str, lut_bits: u64) -> Fingerprint {
        Fingerprint {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cpu: detect_cpu(),
            features: features.to_string(),
            build: if cfg!(debug_assertions) {
                "debug"
            } else {
                "release"
            }
            .to_string(),
            lut_bits,
            git_rev: read_git_rev().unwrap_or_else(|| "unknown".to_string()),
        }
    }

    /// Grouping key for the regression sentinel: every field that
    /// changes the performance envelope, excluding `git_rev` (history
    /// must span commits to be useful).
    pub fn key(&self) -> String {
        format!(
            "{}/{}/{}/{}/{}/lut{}",
            self.os, self.arch, self.cpu, self.build, self.features, self.lut_bits
        )
    }
}

/// Runtime CPU feature detection for the fields the decode kernels
/// care about.
fn detect_cpu() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats = Vec::new();
        if std::arch::is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("bmi2") {
            feats.push("bmi2");
        }
        if feats.is_empty() {
            "baseline".to_string()
        } else {
            feats.join("+")
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "baseline".to_string()
    }
}

/// Best-effort short git revision: follows `.git/HEAD` one level of
/// indirection, walking up from the current directory so bench
/// binaries run from crate subdirectories still resolve it.
fn read_git_rev() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git/HEAD");
        if let Ok(contents) = fs::read_to_string(&head) {
            let contents = contents.trim();
            let hash = if let Some(refname) = contents.strip_prefix("ref: ") {
                fs::read_to_string(dir.join(".git").join(refname.trim()))
                    .ok()?
                    .trim()
                    .to_string()
            } else {
                contents.to_string()
            };
            return Some(hash.chars().take(12).collect());
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// One run's durable record.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LedgerRecord {
    /// Record schema version ([`LEDGER_SCHEMA_VERSION`]).
    pub schema: u64,
    /// Which subcommand / bench binary measured this (`bench`, `trace`,
    /// `decode_throughput`, …). The sentinel only compares records with
    /// equal subcommands.
    pub subcommand: String,
    /// Host/build identity.
    pub fingerprint: Fingerprint,
    /// The run's seed (0 when the subcommand takes none).
    pub seed: u64,
    /// End-to-end wall-clock of the run in nanoseconds.
    pub wall_ns: u64,
    /// Full counter snapshot of the run's [`MetricsRegistry`].
    pub counters: BTreeMap<String, u64>,
    /// Per-stage span rollups (name → count + total duration).
    pub stages: BTreeMap<String, StageRollup>,
    /// Named scalar measurements the sentinel compares across runs.
    /// Direction convention: names ending in `_ns` are lower-is-better;
    /// names ending in `_mb_s`, `_per_s` or `_ratio` are
    /// higher-is-better. Non-finite values are dropped on write.
    pub samples: BTreeMap<String, f64>,
}

impl LedgerRecord {
    /// Starts a record for `subcommand` under `fingerprint`.
    pub fn new(subcommand: &str, fingerprint: Fingerprint) -> LedgerRecord {
        LedgerRecord {
            schema: LEDGER_SCHEMA_VERSION,
            subcommand: subcommand.to_string(),
            fingerprint,
            ..LedgerRecord::default()
        }
    }

    /// Copies every counter out of `registry` into the record.
    pub fn record_registry(&mut self, registry: &MetricsRegistry) {
        for (name, value) in registry.counters() {
            self.counters.insert(name, value);
        }
    }

    /// Serializes the record as one framed JSONL line (no trailing
    /// newline).
    pub fn to_line(&self) -> String {
        let rec = self.rec_json();
        format!("{{\"crc\":{},\"rec\":{}}}", crc32(rec.as_bytes()), rec)
    }

    fn rec_json(&self) -> String {
        let f = &self.fingerprint;
        let mut counters = String::new();
        for (k, v) in &self.counters {
            if !counters.is_empty() {
                counters.push(',');
            }
            counters.push_str(&format!("{}:{}", json::escape(k), v));
        }
        let mut stages = String::new();
        for (k, v) in &self.stages {
            if !stages.is_empty() {
                stages.push(',');
            }
            stages.push_str(&format!(
                "{}:{{\"count\":{},\"total_ns\":{}}}",
                json::escape(k),
                v.count,
                v.total_ns
            ));
        }
        let mut samples = String::new();
        for (k, v) in &self.samples {
            if !v.is_finite() {
                continue;
            }
            if !samples.is_empty() {
                samples.push(',');
            }
            samples.push_str(&format!("{}:{}", json::escape(k), fmt_f64(*v)));
        }
        format!(
            "{{\"schema\":{},\"subcommand\":{},\"fingerprint\":{{\"os\":{},\"arch\":{},\
             \"cpu\":{},\"features\":{},\"build\":{},\"lut_bits\":{},\"git_rev\":{}}},\
             \"seed\":{},\"wall_ns\":{},\"counters\":{{{}}},\"stages\":{{{}}},\
             \"samples\":{{{}}}}}",
            self.schema,
            json::escape(&self.subcommand),
            json::escape(&f.os),
            json::escape(&f.arch),
            json::escape(&f.cpu),
            json::escape(&f.features),
            json::escape(&f.build),
            f.lut_bits,
            json::escape(&f.git_rev),
            self.seed,
            self.wall_ns,
            counters,
            stages,
            samples
        )
    }

    /// Parses one framed line, validating the CRC.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the line is not valid JSON,
    /// is missing frame fields, fails the CRC, or has a malformed
    /// record body — all of which [`load`] treats as "skip this line".
    pub fn parse_line(line: &str) -> Result<LedgerRecord, String> {
        let marker = ",\"rec\":";
        let start = line
            .find(marker)
            .ok_or_else(|| "no rec field".to_string())?;
        let rec_bytes = line
            .get(start + marker.len()..line.len().saturating_sub(1))
            .ok_or_else(|| "truncated frame".to_string())?;
        let v = json::parse_json(line).map_err(|e| format!("bad json: {e:?}"))?;
        let framed_crc = v
            .get("crc")
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| "no crc field".to_string())? as u32;
        let actual = crc32(rec_bytes.as_bytes());
        if actual != framed_crc {
            return Err(format!(
                "crc mismatch: framed {framed_crc}, actual {actual}"
            ));
        }
        let rec = v.get("rec").ok_or_else(|| "no rec value".to_string())?;
        LedgerRecord::from_json(rec).ok_or_else(|| "malformed record".to_string())
    }

    /// Rebuilds a record from its parsed `rec` JSON value.
    pub fn from_json(v: &JsonValue) -> Option<LedgerRecord> {
        let u64_of = |v: &JsonValue| v.as_f64().map(|f| f as u64);
        let str_of = |v: Option<&JsonValue>| v.and_then(JsonValue::as_str).map(str::to_string);
        let f = v.get("fingerprint")?;
        let fingerprint = Fingerprint {
            os: str_of(f.get("os"))?,
            arch: str_of(f.get("arch"))?,
            cpu: str_of(f.get("cpu"))?,
            features: str_of(f.get("features"))?,
            build: str_of(f.get("build"))?,
            lut_bits: f.get("lut_bits").and_then(u64_of)?,
            git_rev: str_of(f.get("git_rev"))?,
        };
        let mut rec = LedgerRecord {
            schema: v.get("schema").and_then(u64_of)?,
            subcommand: str_of(v.get("subcommand"))?,
            fingerprint,
            seed: v.get("seed").and_then(u64_of)?,
            wall_ns: v.get("wall_ns").and_then(u64_of)?,
            ..LedgerRecord::default()
        };
        if let Some(JsonValue::Obj(m)) = v.get("counters") {
            for (k, val) in m {
                rec.counters.insert(k.clone(), u64_of(val)?);
            }
        }
        if let Some(JsonValue::Obj(m)) = v.get("stages") {
            for (k, val) in m {
                rec.stages.insert(
                    k.clone(),
                    StageRollup {
                        count: val.get("count").and_then(u64_of)?,
                        total_ns: val.get("total_ns").and_then(u64_of)?,
                    },
                );
            }
        }
        if let Some(JsonValue::Obj(m)) = v.get("samples") {
            for (k, val) in m {
                rec.samples.insert(k.clone(), val.as_f64()?);
            }
        }
        Some(rec)
    }
}

/// Shortest-round-trip f64 formatting that stays valid JSON (`Display`
/// prints integral floats without a dot, which JSON accepts).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// The ledger path for this process: `CCC_LEDGER` override, else
/// [`DEFAULT_LEDGER_PATH`]; `None` when `CCC_NO_LEDGER=1` disables
/// ledger writes entirely (tests, throwaway runs).
pub fn ledger_path() -> Option<PathBuf> {
    if std::env::var_os("CCC_NO_LEDGER").is_some_and(|v| v == "1") {
        return None;
    }
    Some(
        std::env::var_os("CCC_LEDGER")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from(DEFAULT_LEDGER_PATH)),
    )
}

/// Appends one record (single `write` on an append-mode handle).
///
/// # Errors
///
/// Propagates directory-creation / open / write failures; callers
/// treat ledger appends as best-effort and only warn.
pub fn append(path: &Path, record: &LedgerRecord) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let mut line = record.to_line();
    line.push('\n');
    let mut file = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(line.as_bytes())
}

/// What [`load`] found.
#[derive(Debug, Clone, Default)]
pub struct LoadOutcome {
    /// Every record that parsed and passed its CRC, in file order.
    pub records: Vec<LedgerRecord>,
    /// Lines skipped (torn tail, corruption, foreign schema).
    pub skipped: u64,
}

/// Loads a ledger, skipping (and counting) undecodable lines.
/// A missing file is an empty ledger, not an error.
///
/// # Errors
///
/// Propagates only read I/O failures on an *existing* file.
pub fn load(path: &Path) -> std::io::Result<LoadOutcome> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(LoadOutcome::default());
        }
        Err(e) => return Err(e),
    };
    let mut out = LoadOutcome::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match LedgerRecord::parse_line(line) {
            Ok(rec) if rec.schema == LEDGER_SCHEMA_VERSION => out.records.push(rec),
            _ => out.skipped += 1,
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> LedgerRecord {
        let mut rec = LedgerRecord::new(
            "bench",
            Fingerprint {
                os: "linux".into(),
                arch: "x86_64".into(),
                cpu: "avx2+bmi2".into(),
                features: "simd".into(),
                build: "release".into(),
                lut_bits: 8,
                git_rev: "abc123def456".into(),
            },
        );
        rec.seed = 42;
        rec.wall_ns = 1_234_567;
        rec.counters.insert("engine.cache.hits".into(), 17);
        rec.stages.insert(
            "compile".into(),
            StageRollup {
                count: 3,
                total_ns: 900,
            },
        );
        rec.samples.insert("prepare_wall_ns".into(), 1_234_567.0);
        rec.samples.insert("inter_over_lut_ratio".into(), 2.75);
        rec
    }

    #[test]
    fn line_round_trips_exactly() {
        let rec = sample_record();
        let line = rec.to_line();
        let back = LedgerRecord::parse_line(&line).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn crc_catches_a_flipped_byte() {
        let line = sample_record().to_line();
        // Flip one payload character (a digit inside wall_ns).
        let corrupted = line.replace("1234567", "1234568");
        assert_ne!(line, corrupted);
        let err = LedgerRecord::parse_line(&corrupted).unwrap_err();
        assert!(err.contains("crc mismatch"), "{err}");
    }

    #[test]
    fn truncated_tail_is_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("ccc-ledger-test-{}", std::process::id()));
        let path = dir.join("ledger.jsonl");
        let _ = fs::remove_dir_all(&dir);
        let rec = sample_record();
        append(&path, &rec).unwrap();
        append(&path, &rec).unwrap();
        // Simulate a torn final append.
        let mut text = fs::read_to_string(&path).unwrap();
        let full = rec.to_line();
        text.push_str(&full[..full.len() / 2]);
        fs::write(&path, &text).unwrap();
        let out = load(&path).unwrap();
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.skipped, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_ledger_is_empty() {
        let out = load(Path::new("/nonexistent/ccc/ledger.jsonl")).unwrap();
        assert!(out.records.is_empty());
        assert_eq!(out.skipped, 0);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn fingerprint_key_excludes_git_rev() {
        let mut a = sample_record().fingerprint;
        let mut b = a.clone();
        b.git_rev = "other".into();
        assert_eq!(a.key(), b.key());
        b.lut_bits = 9;
        assert_ne!(a.key(), b.key());
        a.features.clear();
        assert!(a.key().contains("//"), "empty feature set keeps its slot");
    }
}
