//! # ccc-telemetry — the unified telemetry layer
//!
//! Zero-dependency observability for the compile→encode→fetch pipeline:
//!
//! * [`registry`] — a [`MetricsRegistry`] of named counters, gauges and
//!   fixed-bucket histograms with cheap atomic updates and a stable,
//!   sorted text/JSON dump;
//! * [`trace`] — the [`TraceSink`] abstraction with a ring-buffered
//!   structured event recorder ([`RingSink`]), a thread-shareable
//!   wrapper ([`SharedSink`]) and a [`NoopSink`] that costs nothing on
//!   the hot path;
//! * [`export`] — exporters to Chrome trace-event JSON (loadable in
//!   `chrome://tracing` / Perfetto) and a flat metrics snapshot;
//! * [`clock`] — the [`Clock`] trait behind every stage timer, with a
//!   monotonic production implementation and a deterministic
//!   [`FakeClock`] for tests;
//! * [`json`] — a minimal JSON value model and parser, used to validate
//!   that exported traces round-trip;
//! * [`spans`] — causal span forests: reconstruction and validation of
//!   the hierarchical span tree, critical-path extraction and
//!   per-stage rollups (DESIGN.md §16);
//! * [`ledger`] — the append-only, CRC-framed JSONL run ledger every
//!   subcommand and bench binary writes, keyed by a host/build
//!   [`ledger::Fingerprint`] (DESIGN.md §16).
//!
//! ## Overhead policy
//!
//! Instrumented code paths take an `Option`al sink (or a sink whose
//! no-op variant is a unit struct), so the disabled configuration
//! executes the exact pre-telemetry instruction stream: results are
//! byte-identical and the hot loops pay nothing. When enabled, events
//! are recorded into a fixed-capacity ring (old events drop, never the
//! run) and per-kind counts are kept *outside* the ring so the post-run
//! reconciliation against the simulator's own counters stays exact even
//! after drops. See DESIGN.md §12.

pub mod clock;
pub mod export;
pub mod json;
pub mod ledger;
pub mod registry;
pub mod spans;
pub mod trace;

pub use clock::{Clock, FakeClock, MonotonicClock, Sleeper, ThreadSleeper};
pub use export::{chrome_trace_json, metrics_snapshot_json, metrics_snapshot_name, TraceMeta};
pub use json::{parse_json, JsonError, JsonValue};
pub use ledger::{Fingerprint, LedgerRecord, LoadOutcome, DEFAULT_LEDGER_PATH};
pub use registry::{observe_fetch_histograms, Counter, Gauge, Histogram, MetricsRegistry};
pub use spans::{ForestError, SpanForest, SpanNode, StageRollup};
pub use trace::{
    EventCounts, FetchEventKind, NoopSink, RingSink, SharedSink, TraceEvent, TraceSink,
};
