//! Exporters: Chrome trace-event JSON and flat metrics snapshots.
//!
//! [`chrome_trace_json`] renders a recorded event stream in the Chrome
//! trace-event format (load the file in `chrome://tracing` or
//! Perfetto): engine-stage spans become `ph:"X"` complete events on
//! `tid` 1 with microsecond timestamps, fetch-pipeline events become
//! `ph:"i"` instants on `tid` 2 with the *simulated cycle* as the
//! timestamp — so the horizontal axis of the fetch track reads in
//! cycles, which is what the paper's figures plot. A `metadata` object
//! carries the run labels, the per-kind totals and the ring drop count,
//! which is what the `--check` validation reconciles against.
//!
//! All JSON here is emitted by hand (stable field order, no
//! dependencies) and proven well-formed by round-tripping through
//! [`crate::json::parse_json`] in the tests and in the trace smoke
//! gate.

use crate::json::escape;
use crate::registry::MetricsRegistry;
use crate::trace::{EventCounts, FetchEventKind, TraceEvent};

/// Labels and reconciliation data attached to an exported trace.
#[derive(Debug, Clone, Default)]
pub struct TraceMeta {
    /// Workload name (e.g. `gcc`).
    pub workload: String,
    /// Compression scheme name (e.g. `stream`).
    pub scheme: String,
    /// Per-kind totals over the whole run (unaffected by ring drops).
    pub counts: EventCounts,
    /// Events the ring dropped; 0 means the `traceEvents` array is the
    /// complete run and per-kind counts can be reconciled exactly.
    pub dropped: u64,
}

fn push_span(
    out: &mut String,
    name: &str,
    detail: &str,
    id: u64,
    parent: u64,
    start_ns: u64,
    dur_ns: u64,
) {
    // Microsecond timestamps with nanosecond precision kept in the
    // fractional digits, as the trace-event format expects. The causal
    // ids ride in `args` so Perfetto still renders the track while the
    // forest stays reconstructible from the exported file.
    out.push_str(&format!(
        "{{\"name\":{},\"cat\":\"engine\",\"ph\":\"X\",\"ts\":{}.{:03},\"dur\":{}.{:03},\
         \"pid\":1,\"tid\":1,\"args\":{{\"detail\":{},\"id\":{id},\"parent\":{parent}}}}}",
        escape(name),
        start_ns / 1000,
        start_ns % 1000,
        dur_ns / 1000,
        dur_ns % 1000,
        escape(detail),
    ));
}

fn push_fetch(out: &mut String, seq: u64, cycle: u64, block: u32, kind: &FetchEventKind) {
    let mut args = format!("\"seq\":{seq},\"block\":{block}");
    match kind {
        FetchEventKind::CacheHit { bank } => args.push_str(&format!(",\"bank\":{bank}")),
        FetchEventKind::CacheMiss { bank, lines } => {
            args.push_str(&format!(",\"bank\":{bank},\"lines\":{lines}"))
        }
        FetchEventKind::AtbMiss { penalty } => args.push_str(&format!(",\"penalty\":{penalty}")),
        FetchEventKind::L0Fill { ops } => args.push_str(&format!(",\"ops\":{ops}")),
        FetchEventKind::DecodeStall { cycles } => args.push_str(&format!(",\"cycles\":{cycles}")),
        FetchEventKind::AtbHit
        | FetchEventKind::PredCorrect
        | FetchEventKind::PredWrong
        | FetchEventKind::L0Hit
        | FetchEventKind::IntegrityFault => {}
    }
    out.push_str(&format!(
        "{{\"name\":{},\"cat\":\"fetch\",\"ph\":\"i\",\"ts\":{cycle},\"s\":\"t\",\
         \"pid\":1,\"tid\":2,\"args\":{{{args}}}}}",
        escape(kind.name()),
    ));
}

fn counts_json(c: &EventCounts) -> String {
    format!(
        "{{\"cache_hit\":{},\"cache_miss\":{},\"atb_hit\":{},\"atb_miss\":{},\
         \"pred_correct\":{},\"pred_wrong\":{},\"l0_hit\":{},\"l0_fill\":{},\
         \"decode_stall\":{},\"integrity_fault\":{},\"spans\":{}}}",
        c.cache_hits,
        c.cache_misses,
        c.atb_hits,
        c.atb_misses,
        c.pred_correct,
        c.pred_wrong,
        c.buffer_hits,
        c.buffer_misses,
        c.decode_stalls,
        c.integrity_faults,
        c.spans,
    )
}

/// Renders `events` as a Chrome trace-event JSON document.
pub fn chrome_trace_json(events: &[TraceEvent], meta: &TraceMeta) -> String {
    let mut body = String::with_capacity(events.len() * 96 + 512);
    for ev in events {
        if !body.is_empty() {
            body.push(',');
        }
        match ev {
            TraceEvent::Span {
                name,
                detail,
                id,
                parent,
                start_ns,
                dur_ns,
            } => push_span(&mut body, name, detail, *id, *parent, *start_ns, *dur_ns),
            TraceEvent::Fetch {
                seq,
                cycle,
                block,
                kind,
            } => push_fetch(&mut body, *seq, *cycle, *block, kind),
        }
    }
    format!(
        "{{\"traceEvents\":[{body}],\"displayTimeUnit\":\"ms\",\"metadata\":{{\
         \"workload\":{},\"scheme\":{},\"dropped\":{},\"counts\":{}}}}}",
        escape(&meta.workload),
        escape(&meta.scheme),
        meta.dropped,
        counts_json(&meta.counts),
    )
}

/// Renders a registry as a flat metrics snapshot document — the payload
/// of `results/METRICS_<scheme>.json`.
pub fn metrics_snapshot_json(registry: &MetricsRegistry, meta: &TraceMeta) -> String {
    format!(
        "{{\"workload\":{},\"scheme\":{},\"metrics\":{}}}",
        escape(&meta.workload),
        escape(&meta.scheme),
        registry.to_json(),
    )
}

/// The file name a scheme's metrics snapshot is written under:
/// `METRICS_<enc>.json`, where ASCII alphanumerics and `_` pass
/// through verbatim (so the matrix schemes keep their historical
/// names, `METRICS_stream_1.json` included) and every other byte —
/// `-` itself included, since it introduces escapes — is encoded as
/// `-xHH`. The encoding is injective: two distinct scheme names can
/// never collide on one snapshot path, and a hostile name like
/// `../x` cannot traverse out of the results directory.
pub fn metrics_snapshot_name(scheme: &str) -> String {
    let mut enc = String::with_capacity(scheme.len());
    for b in scheme.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'_' => enc.push(b as char),
            other => enc.push_str(&format!("-x{other:02x}")),
        }
    }
    format!("METRICS_{enc}.json")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Span {
                name: "compile",
                detail: "gcc".into(),
                id: 1,
                parent: 0,
                start_ns: 1500,
                dur_ns: 2001,
            },
            TraceEvent::Fetch {
                seq: 0,
                cycle: 7,
                block: 3,
                kind: FetchEventKind::CacheMiss { bank: 1, lines: 2 },
            },
            TraceEvent::Fetch {
                seq: 1,
                cycle: 9,
                block: 4,
                kind: FetchEventKind::L0Fill { ops: 12 },
            },
        ]
    }

    #[test]
    fn chrome_trace_round_trips_and_is_structured() {
        let mut counts = EventCounts::default();
        for ev in sample_events() {
            counts.add(&ev);
        }
        let meta = TraceMeta {
            workload: "gcc".into(),
            scheme: "stream".into(),
            counts,
            dropped: 0,
        };
        let text = chrome_trace_json(&sample_events(), &meta);
        let v = parse_json(&text).unwrap();
        let evs = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(evs[0].get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(evs[0].get("dur").unwrap().as_f64(), Some(2.001));
        let args = evs[0].get("args").unwrap();
        assert_eq!(args.get("id").unwrap().as_f64(), Some(1.0));
        assert_eq!(args.get("parent").unwrap().as_f64(), Some(0.0));
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(evs[1].get("ts").unwrap().as_f64(), Some(7.0));
        assert_eq!(
            evs[1].get("args").unwrap().get("lines").unwrap().as_f64(),
            Some(2.0)
        );
        let md = v.get("metadata").unwrap();
        assert_eq!(md.get("scheme").unwrap().as_str(), Some("stream"));
        assert_eq!(md.get("dropped").unwrap().as_f64(), Some(0.0));
        let c = md.get("counts").unwrap();
        assert_eq!(c.get("cache_miss").unwrap().as_f64(), Some(1.0));
        assert_eq!(c.get("l0_fill").unwrap().as_f64(), Some(1.0));
        assert_eq!(c.get("spans").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn empty_trace_is_valid() {
        let meta = TraceMeta::default();
        let v = parse_json(&chrome_trace_json(&[], &meta)).unwrap();
        assert_eq!(v.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn metrics_snapshot_round_trips() {
        let reg = MetricsRegistry::new();
        reg.counter("fetch.cache_hits").add(41);
        reg.histogram("decode.stall_bits", &[8, 64]).observe(12);
        let meta = TraceMeta {
            workload: "li".into(),
            scheme: "byte".into(),
            ..TraceMeta::default()
        };
        let v = parse_json(&metrics_snapshot_json(&reg, &meta)).unwrap();
        assert_eq!(v.get("workload").unwrap().as_str(), Some("li"));
        let m = v.get("metrics").unwrap();
        assert_eq!(
            m.get("counters")
                .unwrap()
                .get("fetch.cache_hits")
                .unwrap()
                .as_f64(),
            Some(41.0)
        );
        assert!(m
            .get("histograms")
            .unwrap()
            .get("decode.stall_bits")
            .is_some());
    }

    #[test]
    fn snapshot_names_are_stable_for_matrix_schemes() {
        // The historical names must not change — check.sh and CI key
        // on them, `stream_1` included.
        for s in ["byte", "stream", "stream_1", "full", "tailored", "base"] {
            assert_eq!(metrics_snapshot_name(s), format!("METRICS_{s}.json"));
        }
    }

    #[test]
    fn snapshot_names_are_injective_and_path_safe() {
        // The classic collision: a name that *looks* pre-escaped must
        // not map to the same file as the name it imitates.
        assert_ne!(
            metrics_snapshot_name("a/b"),
            metrics_snapshot_name("a-x2fb")
        );
        assert_eq!(metrics_snapshot_name("a/b"), "METRICS_a-x2fb.json");
        assert_eq!(metrics_snapshot_name("a-x2fb"), "METRICS_a-x2dx2fb.json");
        // Traversal attempts stay inside the directory.
        let n = metrics_snapshot_name("../x");
        assert!(!n.contains('/'), "{n}");
        assert!(!n.contains(".."), "{n}");
        // Pairwise-distinct over a tricky corpus.
        let corpus = [
            "stream",
            "stream_1",
            "stream-1",
            "stream/1",
            "stream.1",
            "stream 1",
            "stream-x2f1",
        ];
        for (i, a) in corpus.iter().enumerate() {
            for b in corpus.iter().skip(i + 1) {
                assert_ne!(
                    metrics_snapshot_name(a),
                    metrics_snapshot_name(b),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }
}
