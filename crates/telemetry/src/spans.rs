//! Causal span forests: reconstruction, validation, critical-path
//! extraction and per-stage rollups over the hierarchical
//! [`TraceEvent::Span`] events the engine emits.
//!
//! Producers stamp every span with a trace-unique `id` and the `parent`
//! id that was current when the work was *scheduled* (0 = root). The
//! parent link travels with the job closure across the work-stealing
//! pool, so the tree reflects causality, not thread residency. This
//! module turns the flat drained event list back into a forest,
//! checks it is well-formed (unique ids, no orphan parents, children
//! nested inside their parent's `[start, end]` window) and answers the
//! two questions attribution needs: *where did the wall-clock go*
//! (critical path — from each root, repeatedly follow the child that
//! finished last) and *what did each stage cost in total* (rollups,
//! which reconcile exactly with the engine's stage timers because the
//! engine feeds both from the same start/duration pair).

use crate::trace::TraceEvent;
use std::collections::BTreeMap;

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span id (non-zero unless the producer was causality-blind).
    pub id: u64,
    /// Parent span id, 0 for roots.
    pub parent: u64,
    /// Stage name (`compile`, `emulate`, `encode`, `cache-probe`, …).
    pub name: &'static str,
    /// What was processed (workload name, `artifact-scheme` label, …).
    pub detail: String,
    /// Start in clock nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl SpanNode {
    /// End timestamp (`start + dur`, saturating).
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }
}

/// Why a drained event list does not form a well-formed forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForestError {
    /// Two spans carried the same non-zero id.
    DuplicateId(u64),
    /// A span's parent id names no span in the trace.
    OrphanParent {
        /// The child span's id.
        id: u64,
        /// The dangling parent id.
        parent: u64,
    },
    /// A child's `[start, end]` window is not contained in its
    /// parent's.
    NotNested {
        /// The child span's id.
        id: u64,
        /// The parent span's id.
        parent: u64,
    },
    /// A span is its own ancestor.
    Cycle(u64),
}

impl std::fmt::Display for ForestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForestError::DuplicateId(id) => write!(f, "duplicate span id {id}"),
            ForestError::OrphanParent { id, parent } => {
                write!(f, "span {id} has orphan parent {parent}")
            }
            ForestError::NotNested { id, parent } => {
                write!(f, "span {id} not nested within parent {parent}")
            }
            ForestError::Cycle(id) => write!(f, "span {id} is its own ancestor"),
        }
    }
}

/// A validated forest of [`SpanNode`]s.
#[derive(Debug, Clone, Default)]
pub struct SpanForest {
    nodes: Vec<SpanNode>,
    /// Children (indices into `nodes`) per span id.
    children: BTreeMap<u64, Vec<usize>>,
    /// Indices of root nodes (parent 0 or anonymous id 0).
    roots: Vec<usize>,
}

impl SpanForest {
    /// Reconstructs and validates the forest from a drained event list.
    ///
    /// Spans with id 0 (causality-blind producers) are accepted as
    /// anonymous roots but cannot be parents. Fetch events are ignored.
    ///
    /// # Errors
    ///
    /// Returns the first [`ForestError`] found: duplicate non-zero ids,
    /// parent links naming no span, children not nested inside their
    /// parent's time window, or parent cycles.
    pub fn build(events: &[TraceEvent]) -> Result<SpanForest, ForestError> {
        let mut nodes = Vec::new();
        for ev in events {
            if let TraceEvent::Span {
                name,
                detail,
                id,
                parent,
                start_ns,
                dur_ns,
            } = ev
            {
                nodes.push(SpanNode {
                    id: *id,
                    parent: *parent,
                    name,
                    detail: detail.clone(),
                    start_ns: *start_ns,
                    dur_ns: *dur_ns,
                });
            }
        }
        let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            if n.id != 0 && by_id.insert(n.id, i).is_some() {
                return Err(ForestError::DuplicateId(n.id));
            }
        }
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        let mut roots = Vec::new();
        for (i, n) in nodes.iter().enumerate() {
            if n.parent == 0 {
                roots.push(i);
                continue;
            }
            let Some(&pi) = by_id.get(&n.parent) else {
                return Err(ForestError::OrphanParent {
                    id: n.id,
                    parent: n.parent,
                });
            };
            let p = &nodes[pi];
            if n.start_ns < p.start_ns || n.end_ns() > p.end_ns() {
                return Err(ForestError::NotNested {
                    id: n.id,
                    parent: n.parent,
                });
            }
            children.entry(n.parent).or_default().push(i);
        }
        // Cycle check: walk each node's ancestor chain; the nesting
        // check above already forbids most cycles, but zero-duration
        // spans could tie, so check explicitly.
        for n in &nodes {
            let mut hops = 0usize;
            let mut cur = n.parent;
            while cur != 0 {
                hops += 1;
                if hops > nodes.len() {
                    return Err(ForestError::Cycle(n.id));
                }
                cur = nodes[by_id[&cur]].parent;
            }
        }
        Ok(SpanForest {
            nodes,
            children,
            roots,
        })
    }

    /// All spans, in recorded order.
    pub fn nodes(&self) -> &[SpanNode] {
        &self.nodes
    }

    /// Whether the forest holds no spans.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Root spans (parent 0), in recorded order.
    pub fn roots(&self) -> impl Iterator<Item = &SpanNode> {
        self.roots.iter().map(|&i| &self.nodes[i])
    }

    /// Direct children of span `id`, in recorded order.
    pub fn children_of(&self, id: u64) -> impl Iterator<Item = &SpanNode> {
        self.children
            .get(&id)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(|&i| &self.nodes[i])
    }

    /// The critical path of the forest: starting from the root that
    /// finished last, repeatedly descend into the child that finished
    /// last. This is the chain of spans that bounded the run's
    /// wall-clock — shortening anything off this path cannot have made
    /// the run end earlier.
    pub fn critical_path(&self) -> Vec<&SpanNode> {
        let mut path = Vec::new();
        let Some(mut cur) = self.roots().max_by_key(|n| (n.end_ns(), n.id)) else {
            return path;
        };
        loop {
            path.push(cur);
            let Some(next) = self.children_of(cur.id).max_by_key(|n| (n.end_ns(), n.id)) else {
                return path;
            };
            cur = next;
        }
    }

    /// Total duration and span count per stage name, sorted by name.
    /// For the engine's stage spans this reconciles *exactly* with its
    /// `EngineSnapshot` timers: both sides are fed the same
    /// start/duration pair.
    pub fn stage_rollup(&self) -> BTreeMap<String, StageRollup> {
        let mut out: BTreeMap<String, StageRollup> = BTreeMap::new();
        for n in &self.nodes {
            let e = out.entry(n.name.to_string()).or_default();
            e.count += 1;
            e.total_ns += n.dur_ns;
        }
        out
    }
}

/// Per-stage aggregate: how many spans and their summed duration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageRollup {
    /// Number of spans with this stage name.
    pub count: u64,
    /// Summed span duration in nanoseconds.
    pub total_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, id: u64, parent: u64, start: u64, dur: u64) -> TraceEvent {
        TraceEvent::Span {
            name,
            detail: format!("d{id}"),
            id,
            parent,
            start_ns: start,
            dur_ns: dur,
        }
    }

    #[test]
    fn builds_a_nested_forest_and_finds_the_critical_path() {
        let events = vec![
            span("prepare", 1, 0, 0, 100),
            span("workload", 2, 1, 0, 40),
            span("workload", 3, 1, 10, 90),
            span("compile", 4, 2, 0, 20),
            span("encode", 5, 3, 50, 50),
        ];
        let f = SpanForest::build(&events).unwrap();
        assert_eq!(f.nodes().len(), 5);
        assert_eq!(f.roots().count(), 1);
        let path: Vec<u64> = f.critical_path().iter().map(|n| n.id).collect();
        assert_eq!(path, vec![1, 3, 5], "latest-finishing chain");
        let roll = f.stage_rollup();
        assert_eq!(roll["workload"].count, 2);
        assert_eq!(roll["workload"].total_ns, 130);
    }

    #[test]
    fn orphan_parent_is_rejected() {
        let events = vec![span("compile", 1, 99, 0, 10)];
        assert_eq!(
            SpanForest::build(&events).unwrap_err(),
            ForestError::OrphanParent { id: 1, parent: 99 }
        );
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let events = vec![span("a", 7, 0, 0, 1), span("b", 7, 0, 0, 1)];
        assert_eq!(
            SpanForest::build(&events).unwrap_err(),
            ForestError::DuplicateId(7)
        );
    }

    #[test]
    fn non_nested_child_is_rejected() {
        let events = vec![span("p", 1, 0, 10, 10), span("c", 2, 1, 5, 10)];
        assert_eq!(
            SpanForest::build(&events).unwrap_err(),
            ForestError::NotNested { id: 2, parent: 1 }
        );
    }

    #[test]
    fn cycles_are_rejected() {
        // Two zero-width spans pointing at each other tie on nesting.
        let events = vec![span("a", 1, 2, 0, 0), span("b", 2, 1, 0, 0)];
        let err = SpanForest::build(&events).unwrap_err();
        assert!(matches!(err, ForestError::Cycle(_)), "{err:?}");
    }

    #[test]
    fn anonymous_spans_are_roots() {
        let events = vec![span("legacy", 0, 0, 0, 5), span("legacy", 0, 0, 2, 9)];
        let f = SpanForest::build(&events).unwrap();
        assert_eq!(f.roots().count(), 2);
        let path = f.critical_path();
        assert_eq!(path.len(), 1);
        assert_eq!(path[0].end_ns(), 11);
    }
}
