//! The single monotonic clock source behind every stage timer.
//!
//! Production code uses [`MonotonicClock`] (a [`std::time::Instant`]
//! anchor read once at construction); tests inject a [`FakeClock`] that
//! advances by a fixed step per read, making wall-clock-derived metrics
//! deterministic and assertable.
//!
//! The companion [`Sleeper`] trait is the write side of the same idea:
//! code that must *wait* (retry backoff, most prominently) sleeps
//! through a trait object instead of calling [`std::thread::sleep`]
//! directly. Production uses [`ThreadSleeper`]; tests hand the same
//! [`FakeClock`] in as the sleeper, so a "sleep" simply advances the
//! fake time and the exact backoff schedule becomes assertable without
//! any real waiting.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock. All engine stage timers read time
/// through this trait, never [`Instant::now`] directly, so tests can
/// substitute a deterministic source.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Nanoseconds since this clock's epoch; never decreases.
    fn now_ns(&self) -> u64;
}

/// The production clock: nanoseconds since the clock was created.
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// Creates the clock with its epoch at "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }
}

/// A deterministic test clock: every read advances the time by a fixed
/// step, so code that brackets work with two reads observes exactly one
/// step of "elapsed time" per bracket regardless of host speed.
#[derive(Debug)]
pub struct FakeClock {
    now: AtomicU64,
    step: u64,
}

impl FakeClock {
    /// Creates a clock starting at 0 that advances `step_ns` per read.
    pub fn with_step(step_ns: u64) -> FakeClock {
        FakeClock {
            now: AtomicU64::new(0),
            step: step_ns,
        }
    }

    /// Manually advances the clock (on top of the per-read step).
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.now.fetch_add(self.step, Ordering::Relaxed) + self.step
    }
}

/// A source of delay: retry backoff and other deliberate waits go
/// through this trait so tests can replace real sleeping with fake-time
/// advancement.
pub trait Sleeper: Send + Sync + fmt::Debug {
    /// Blocks (or pretends to block) for `ns` nanoseconds.
    fn sleep_ns(&self, ns: u64);
}

/// The production sleeper: an actual [`std::thread::sleep`].
#[derive(Debug, Default, Clone, Copy)]
pub struct ThreadSleeper;

impl Sleeper for ThreadSleeper {
    fn sleep_ns(&self, ns: u64) {
        if ns > 0 {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }
}

/// Sleeping on a [`FakeClock`] advances the fake time by exactly the
/// requested amount — no real wait — so a test that injects the same
/// `FakeClock` as both [`Clock`] and [`Sleeper`] observes retry
/// schedules in exact, deterministic nanoseconds.
impl Sleeper for FakeClock {
    fn sleep_ns(&self, ns: u64) {
        self.advance(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_decreases() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_steps_per_read() {
        let c = FakeClock::with_step(10);
        assert_eq!(c.now_ns(), 10);
        assert_eq!(c.now_ns(), 20);
        c.advance(100);
        assert_eq!(c.now_ns(), 130);
    }

    #[test]
    fn fake_clock_sleep_advances_fake_time() {
        let c = FakeClock::with_step(0);
        c.sleep_ns(500);
        c.sleep_ns(250);
        assert_eq!(c.now_ns(), 750);
    }

    #[test]
    fn thread_sleeper_zero_is_instant() {
        // Smoke only: must not panic or block forever.
        ThreadSleeper.sleep_ns(0);
        ThreadSleeper.sleep_ns(1);
    }
}
