//! Structured event tracing: the [`TraceSink`] trait, the ring-buffered
//! recorder and the shareable wrapper the parallel engine writes
//! through.
//!
//! Events come in two shapes: instantaneous fetch-pipeline events
//! ([`TraceEvent::Fetch`], stamped with the simulated cycle) and
//! engine-stage spans ([`TraceEvent::Span`], stamped with wall-clock
//! nanoseconds). The ring keeps the most recent `capacity` events and
//! counts what it drops; per-kind totals are tallied on every record —
//! dropped or not — so reconciliation against the simulator's own
//! counters ([`EventCounts`]) is exact regardless of ring pressure.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// What happened at one fetch-pipeline step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchEventKind {
    /// All of the block's lines were resident in the ICache bank.
    CacheHit {
        /// Bank holding the block's first line (lines interleave across
        /// the two banks of the paper's Figure-8 design).
        bank: u8,
    },
    /// At least one line missed; the block was brought in atomically.
    CacheMiss {
        /// Bank of the block's first line.
        bank: u8,
        /// Lines the block spans (the miss-penalty multiplier).
        lines: u32,
    },
    /// The ATB held the block's translation entry.
    AtbHit,
    /// The entry had to be pulled from the in-memory ATT.
    AtbMiss {
        /// Extra cycles charged (translated encodings only).
        penalty: u32,
    },
    /// The previous block's predictor named this block.
    PredCorrect,
    /// The previous block's predictor named some other block.
    PredWrong,
    /// The decompressed block was already in the L0 buffer.
    L0Hit,
    /// L0 miss: the decompressor refills the buffer with this block.
    L0Fill {
        /// Operations decoded into the buffer.
        ops: u32,
    },
    /// Cycles the pipeline stalled on this block's fetch+decode (the
    /// Table-1 penalty actually charged on an L0 miss).
    DecodeStall {
        /// Stall cycles.
        cycles: u32,
    },
    /// An integrity check (ATT entry CRC-8 or payload parity) failed.
    IntegrityFault,
}

impl FetchEventKind {
    /// Short stable name (Chrome-trace event name, metrics key suffix).
    pub fn name(&self) -> &'static str {
        match self {
            FetchEventKind::CacheHit { .. } => "cache_hit",
            FetchEventKind::CacheMiss { .. } => "cache_miss",
            FetchEventKind::AtbHit => "atb_hit",
            FetchEventKind::AtbMiss { .. } => "atb_miss",
            FetchEventKind::PredCorrect => "pred_correct",
            FetchEventKind::PredWrong => "pred_wrong",
            FetchEventKind::L0Hit => "l0_hit",
            FetchEventKind::L0Fill { .. } => "l0_fill",
            FetchEventKind::DecodeStall { .. } => "decode_stall",
            FetchEventKind::IntegrityFault => "integrity_fault",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An instantaneous fetch-pipeline event.
    Fetch {
        /// Index of the block transition that raised it.
        seq: u64,
        /// Simulated cycle at the time of the event.
        cycle: u64,
        /// Block id.
        block: u32,
        /// What happened.
        kind: FetchEventKind,
    },
    /// A timed pipeline-stage span (compile/emulate/encode/cache-probe/
    /// simulate), a node of a causal span *tree*: `id` names the span,
    /// `parent` points at the enclosing span (0 = root). Parentage is
    /// assigned by the producer and survives hand-off across worker
    /// threads (the engine's pool carries the current span id with each
    /// job), so the forest can be reconstructed after the fact by
    /// [`crate::spans::SpanForest::build`].
    Span {
        /// Stage name.
        name: &'static str,
        /// What was being processed (workload, artifact label).
        detail: String,
        /// Span id, unique and non-zero within one trace. 0 is reserved
        /// for "no span" in `parent` links; producers that don't track
        /// causality may emit id 0, which forests treat as anonymous
        /// roots.
        id: u64,
        /// Id of the enclosing span, or 0 for a root.
        parent: u64,
        /// Start, in [`crate::Clock`] nanoseconds.
        start_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
}

/// Per-kind event totals, tallied on record (never affected by ring
/// drops). Field names mirror the simulator's `FetchResult` counters so
/// the reconciliation check is a field-by-field comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// `cache_hit` events.
    pub cache_hits: u64,
    /// `cache_miss` events.
    pub cache_misses: u64,
    /// `atb_hit` events.
    pub atb_hits: u64,
    /// `atb_miss` events.
    pub atb_misses: u64,
    /// `pred_correct` events.
    pub pred_correct: u64,
    /// `pred_wrong` events.
    pub pred_wrong: u64,
    /// `l0_hit` events.
    pub buffer_hits: u64,
    /// `l0_fill` events.
    pub buffer_misses: u64,
    /// `decode_stall` events.
    pub decode_stalls: u64,
    /// `integrity_fault` events.
    pub integrity_faults: u64,
    /// `Span` events.
    pub spans: u64,
}

impl EventCounts {
    /// Tallies one event.
    pub fn add(&mut self, ev: &TraceEvent) {
        match ev {
            TraceEvent::Span { .. } => self.spans += 1,
            TraceEvent::Fetch { kind, .. } => match kind {
                FetchEventKind::CacheHit { .. } => self.cache_hits += 1,
                FetchEventKind::CacheMiss { .. } => self.cache_misses += 1,
                FetchEventKind::AtbHit => self.atb_hits += 1,
                FetchEventKind::AtbMiss { .. } => self.atb_misses += 1,
                FetchEventKind::PredCorrect => self.pred_correct += 1,
                FetchEventKind::PredWrong => self.pred_wrong += 1,
                FetchEventKind::L0Hit => self.buffer_hits += 1,
                FetchEventKind::L0Fill { .. } => self.buffer_misses += 1,
                FetchEventKind::DecodeStall { .. } => self.decode_stalls += 1,
                FetchEventKind::IntegrityFault => self.integrity_faults += 1,
            },
        }
    }

    /// Total events tallied.
    pub fn total(&self) -> u64 {
        self.cache_hits
            + self.cache_misses
            + self.atb_hits
            + self.atb_misses
            + self.pred_correct
            + self.pred_wrong
            + self.buffer_hits
            + self.buffer_misses
            + self.decode_stalls
            + self.integrity_faults
            + self.spans
    }
}

/// Where instrumented code sends events. Implementations must be cheap:
/// the fetch engine calls [`TraceSink::record`] inside its per-block
/// loop when tracing is on.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, ev: TraceEvent);
}

/// The disabled sink: a unit struct whose `record` is empty, so the
/// traced code path with a `NoopSink` optimizes down to the event
/// constructions the optimizer can discard.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline(always)]
    fn record(&mut self, _ev: TraceEvent) {}
}

/// Default ring capacity: ~1M events, a few tens of MB, enough for every
/// suite workload without drops.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

/// A fixed-capacity ring of events. When full, the *oldest* events are
/// dropped (the tail of a run is usually what an investigation needs)
/// and counted; per-kind totals are unaffected by drops.
#[derive(Debug, Clone, Default)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
    counts: EventCounts,
}

impl RingSink {
    /// Creates a ring holding up to `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            buf: VecDeque::new(),
            dropped: 0,
            counts: EventCounts::default(),
        }
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-kind totals over every `record` call (drops included).
    pub fn counts(&self) -> EventCounts {
        self.counts
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Removes and returns all held events, oldest first. Totals and
    /// the drop count are kept.
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        self.counts.add(&ev);
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
}

/// A cloneable, thread-safe handle over a [`RingSink`], for writers on
/// multiple threads (the engine's worker pool) feeding one trace.
#[derive(Debug, Clone)]
pub struct SharedSink {
    inner: Arc<Mutex<RingSink>>,
}

impl SharedSink {
    /// Creates a shared ring of `capacity` events.
    pub fn new(capacity: usize) -> SharedSink {
        SharedSink {
            inner: Arc::new(Mutex::new(RingSink::new(capacity))),
        }
    }

    /// Records one event (usable through `&self`, unlike the trait).
    pub fn record(&self, ev: TraceEvent) {
        self.inner.lock().unwrap().record(ev);
    }

    /// Removes and returns all held events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.inner.lock().unwrap().drain()
    }

    /// Per-kind totals over every record (drops included).
    pub fn counts(&self) -> EventCounts {
        self.inner.lock().unwrap().counts()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap().dropped()
    }
}

impl TraceSink for SharedSink {
    fn record(&mut self, ev: TraceEvent) {
        SharedSink::record(self, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fetch_ev(seq: u64, kind: FetchEventKind) -> TraceEvent {
        TraceEvent::Fetch {
            seq,
            cycle: seq * 2,
            block: seq as u32,
            kind,
        }
    }

    #[test]
    fn ring_drops_oldest_but_counts_everything() {
        let mut r = RingSink::new(2);
        r.record(fetch_ev(0, FetchEventKind::AtbHit));
        r.record(fetch_ev(1, FetchEventKind::AtbHit));
        r.record(fetch_ev(2, FetchEventKind::AtbMiss { penalty: 2 }));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.counts().atb_hits, 2, "totals include dropped events");
        assert_eq!(r.counts().atb_misses, 1);
        let evs = r.drain();
        assert!(matches!(evs[0], TraceEvent::Fetch { seq: 1, .. }));
        assert!(r.is_empty());
        assert_eq!(r.counts().total(), 3, "drain keeps totals");
    }

    #[test]
    fn event_counts_cover_every_kind() {
        let kinds = [
            FetchEventKind::CacheHit { bank: 0 },
            FetchEventKind::CacheMiss { bank: 1, lines: 3 },
            FetchEventKind::AtbHit,
            FetchEventKind::AtbMiss { penalty: 2 },
            FetchEventKind::PredCorrect,
            FetchEventKind::PredWrong,
            FetchEventKind::L0Hit,
            FetchEventKind::L0Fill { ops: 8 },
            FetchEventKind::DecodeStall { cycles: 11 },
            FetchEventKind::IntegrityFault,
        ];
        let mut c = EventCounts::default();
        for (i, k) in kinds.iter().enumerate() {
            c.add(&fetch_ev(i as u64, *k));
        }
        c.add(&TraceEvent::Span {
            name: "compile",
            detail: "w".into(),
            id: 1,
            parent: 0,
            start_ns: 0,
            dur_ns: 1,
        });
        assert_eq!(c.total(), kinds.len() as u64 + 1);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.spans, 1);
    }

    #[test]
    fn shared_sink_is_cloneable_and_aggregates() {
        let s = SharedSink::new(16);
        let s2 = s.clone();
        s.record(fetch_ev(0, FetchEventKind::PredCorrect));
        s2.record(fetch_ev(1, FetchEventKind::PredWrong));
        assert_eq!(s.counts().pred_correct, 1);
        assert_eq!(s.counts().pred_wrong, 1);
        assert_eq!(s.drain().len(), 2);
    }

    #[test]
    fn noop_sink_records_nothing() {
        let mut n = NoopSink;
        n.record(fetch_ev(0, FetchEventKind::AtbHit));
    }
}
