//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms.
//!
//! Handles are `Arc`-shared and updated with relaxed atomics, so
//! instrumented code pays one uncontended atomic add per update and
//! never takes the registry lock. The registry itself is only locked to
//! create or enumerate metrics; dumps are stable (names sort
//! lexicographically) so snapshots diff cleanly across runs.

use crate::json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// `bounds` are inclusive upper edges; a sample lands in the first
/// bucket whose bound is `>= sample`, or in the implicit overflow
/// bucket past the last bound. The bucket counts always sum to the
/// total observation count (the invariant the telemetry proptests pin).
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        let mut b = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        let buckets = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: b,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn observe(&self, sample: u64) {
        let idx = self.bounds.partition_point(|&b| b < sample);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(sample, Ordering::Relaxed);
    }

    /// Inclusive upper bucket edges.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds().len() + 1` entries, overflow last).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total samples observed.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wrapping at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) from the bucket counts,
    /// interpolating linearly inside the bucket that holds the target
    /// rank (the classic fixed-bucket estimator: exact at bucket edges,
    /// off by at most one bucket width inside).
    ///
    /// Conventions for the open-ended parts: a target landing in the
    /// overflow bucket reports the last bound (the estimator cannot see
    /// past its edges); a histogram with no finite buckets reports the
    /// mean; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> f64 {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        if self.bounds.is_empty() {
            return self.sum() as f64 / total as f64;
        }
        let target = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if (next as f64) >= target {
                if i == self.bounds.len() {
                    // Overflow bucket: clamp to the last finite edge.
                    return self.bounds[self.bounds.len() - 1] as f64;
                }
                let lo = if i == 0 { 0 } else { self.bounds[i - 1] } as f64;
                let hi = self.bounds[i] as f64;
                let frac = (target - cum as f64) / c as f64;
                return lo + (hi - lo) * frac.clamp(0.0, 1.0);
            }
            cum = next;
        }
        self.bounds[self.bounds.len() - 1] as f64
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics. Cloneable handles come out; the
/// registry keeps the authoritative sorted map for dumps.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().unwrap();
        let metric = m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match metric {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().unwrap();
        let metric = m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match metric {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// The histogram named `name` with the given inclusive upper bucket
    /// edges, created on first use (later calls ignore `bounds`).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        let mut m = self.metrics.lock().unwrap();
        let metric = m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))));
        match metric {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A stable, sorted, human-readable dump — one metric per line.
    pub fn dump_text(&self) -> String {
        let m = self.metrics.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} = {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{name} = {}\n", g.get())),
                Metric::Histogram(h) => {
                    out.push_str(&format!(
                        "{name} = count {} sum {} p50 {:.1} p90 {:.1} p99 {:.1} buckets {:?}@{:?}\n",
                        h.count(),
                        h.sum(),
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99),
                        h.bucket_counts(),
                        h.bounds(),
                    ));
                }
            }
        }
        out
    }

    /// A stable JSON object: `{"counters":{..},"gauges":{..},
    /// "histograms":{..}}`, names sorted within each section.
    pub fn to_json(&self) -> String {
        let m = self.metrics.lock().unwrap();
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => {
                    if !counters.is_empty() {
                        counters.push(',');
                    }
                    counters.push_str(&format!("{}:{}", json::escape(name), c.get()));
                }
                Metric::Gauge(g) => {
                    if !gauges.is_empty() {
                        gauges.push(',');
                    }
                    gauges.push_str(&format!("{}:{}", json::escape(name), g.get()));
                }
                Metric::Histogram(h) => {
                    if !histograms.is_empty() {
                        histograms.push(',');
                    }
                    let bounds: Vec<String> = h.bounds().iter().map(u64::to_string).collect();
                    let counts: Vec<String> =
                        h.bucket_counts().iter().map(u64::to_string).collect();
                    histograms.push_str(&format!(
                        "{}:{{\"bounds\":[{}],\"counts\":[{}],\"count\":{},\"sum\":{},\
                         \"p50\":{:.3},\"p90\":{:.3},\"p99\":{:.3}}}",
                        json::escape(name),
                        bounds.join(","),
                        counts.join(","),
                        h.count(),
                        h.sum(),
                        h.quantile(0.50),
                        h.quantile(0.90),
                        h.quantile(0.99)
                    ));
                }
            }
        }
        format!("{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}")
    }

    /// Every counter as `(name, value)`, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let m = self.metrics.lock().unwrap();
        m.iter()
            .filter_map(|(n, metric)| match metric {
                Metric::Counter(c) => Some((n.clone(), c.get())),
                _ => None,
            })
            .collect()
    }
}

/// Folds the distribution-bearing fetch events of a drained trace into
/// histograms: decode-stall cycles, ATB miss penalties and L0 fill
/// sizes. The counters already hold the totals; these capture the
/// *shape*, so a metrics snapshot can answer "p99 stall" questions.
pub fn observe_fetch_histograms(events: &[crate::trace::TraceEvent], registry: &MetricsRegistry) {
    use crate::trace::{FetchEventKind, TraceEvent};
    let stalls = registry.histogram("fetch.decode_stall_cycles", &[4, 8, 16, 32, 64, 128, 256]);
    let penalties = registry.histogram("fetch.atb_penalty_cycles", &[1, 2, 4, 8, 16, 32]);
    let fills = registry.histogram("fetch.l0_fill_ops", &[2, 4, 8, 16, 32, 64]);
    for ev in events {
        if let TraceEvent::Fetch { kind, .. } = ev {
            match kind {
                FetchEventKind::DecodeStall { cycles } => stalls.observe(*cycles as u64),
                FetchEventKind::AtbMiss { penalty } => penalties.observe(*penalty as u64),
                FetchEventKind::L0Fill { ops } => fills.observe(*ops as u64),
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_round_trip() {
        let reg = MetricsRegistry::new();
        reg.counter("a.hits").add(3);
        reg.counter("a.hits").inc();
        reg.gauge("a.jobs").set(8);
        reg.gauge("a.jobs").add(-2);
        let h = reg.histogram("a.lat", &[1, 4, 16]);
        for v in [0, 1, 2, 5, 100] {
            h.observe(v);
        }
        assert_eq!(reg.counter("a.hits").get(), 4);
        assert_eq!(reg.gauge("a.jobs").get(), 6);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 108);
        assert_eq!(h.bucket_counts(), vec![2, 1, 1, 1]);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
    }

    #[test]
    fn dump_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").inc();
        reg.histogram("m.mid", &[10]);
        let d1 = reg.dump_text();
        let d2 = reg.dump_text();
        assert_eq!(d1, d2);
        let a = d1.find("a.first").unwrap();
        let m = d1.find("m.mid").unwrap();
        let z = d1.find("z.last").unwrap();
        assert!(a < m && m < z, "sorted: {d1}");
    }

    #[test]
    fn json_dump_parses_back() {
        let reg = MetricsRegistry::new();
        reg.counter("c\"quoted").add(7);
        reg.gauge("g").set(-5);
        reg.histogram("h", &[2, 8]).observe(3);
        let v = crate::json::parse_json(&reg.to_json()).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("c\"quoted")
                .unwrap()
                .as_f64(),
            Some(7.0)
        );
        assert_eq!(
            v.get("gauges").unwrap().get("g").unwrap().as_f64(),
            Some(-5.0)
        );
        let h = v.get("histograms").unwrap().get("h").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    /// Exact `q`-quantile of a sorted sample set (nearest-rank).
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn quantiles_track_a_uniform_distribution_within_a_bucket_width() {
        let reg = MetricsRegistry::new();
        // Bucket width 100 over uniform samples 1..=1000: the estimate
        // must land within one bucket width of the exact quantile.
        let bounds: Vec<u64> = (1..=10).map(|i| i * 100).collect();
        let h = reg.histogram("u", &bounds);
        let samples: Vec<u64> = (1..=1000).collect();
        for &s in &samples {
            h.observe(s);
        }
        for q in [0.10, 0.50, 0.90, 0.99] {
            let exact = exact_quantile(&samples, q) as f64;
            let est = h.quantile(q);
            assert!(
                (est - exact).abs() <= 100.0,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn quantiles_separate_a_skewed_distribution() {
        // A heavily skewed distribution: 90 fast samples in [0,10],
        // 10 slow ones in (10,1000]. With an edge exactly at the split,
        // p50 stays in the fast bucket and p99 in the slow one.
        let reg = MetricsRegistry::new();
        let h = reg.histogram("s", &[10, 1000]);
        let mut samples = Vec::new();
        for i in 0..90 {
            samples.push(i % 11);
        }
        for i in 0..10 {
            samples.push(100 + i * 90);
        }
        for &s in &samples {
            h.observe(s);
        }
        samples.sort_unstable();
        assert!(h.quantile(0.50) <= 10.0, "p50 {}", h.quantile(0.50));
        assert!(h.quantile(0.99) > 10.0, "p99 {}", h.quantile(0.99));
        let exact99 = exact_quantile(&samples, 0.99) as f64;
        assert!((h.quantile(0.99) - exact99).abs() <= 990.0);
    }

    #[test]
    fn quantile_edge_cases() {
        let reg = MetricsRegistry::new();
        let empty = reg.histogram("e", &[10]);
        assert_eq!(empty.quantile(0.5), 0.0);

        let unbounded = reg.histogram("ub", &[]);
        unbounded.observe(4);
        unbounded.observe(8);
        assert_eq!(unbounded.quantile(0.5), 6.0, "no finite buckets: mean");

        let overflow = reg.histogram("of", &[10]);
        overflow.observe(1_000);
        assert_eq!(
            overflow.quantile(0.5),
            10.0,
            "overflow mass clamps to the last edge"
        );

        let h = reg.histogram("q", &[100]);
        h.observe(50);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduped() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h", &[8, 2, 2, 4]);
        assert_eq!(h.bounds(), &[2, 4, 8]);
        assert_eq!(h.bucket_counts().len(), 4);
    }
}
