#!/usr/bin/env sh
# The full local gate: everything CI runs, in the same order.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> golden snapshot suite"
cargo test -q --test golden

echo "==> warm-cache bench smoke"
# Cold run populates a scratch cache; the warm rerun must be served
# entirely from it (--assert-warm exits non-zero on any cache miss).
CCC_SMOKE_DIR="${TMPDIR:-/tmp}/ccc-bench-smoke-$$"
rm -rf "$CCC_SMOKE_DIR"
./target/release/tepic-cc bench --figures fig05 --cache-dir "$CCC_SMOKE_DIR" >/dev/null
./target/release/tepic-cc bench --figures fig05 --cache-dir "$CCC_SMOKE_DIR" --assert-warm >/dev/null
rm -rf "$CCC_SMOKE_DIR"
echo "warm rerun fully cache-served"

echo "==> trace/metrics reconciliation smoke"
# CCC_TRACE_SMOKE=1 implies --check: the emitted Chrome trace must be
# well-formed JSON with at least one span per pipeline stage, zero
# dropped events, and per-kind event totals that reconcile exactly with
# the metrics snapshot (results/METRICS_full.json).
CCC_TRACE_DIR="${TMPDIR:-/tmp}/ccc-trace-smoke-$$"
mkdir -p "$CCC_TRACE_DIR"
CCC_TRACE_SMOKE=1 ./target/release/tepic-cc trace --workload li --scheme full \
    --out "$CCC_TRACE_DIR/trace.json" >/dev/null
rm -rf "$CCC_TRACE_DIR"
echo "trace reconciles with metrics snapshot"

echo "==> chaos self-healing smoke"
# CCC_CHAOS_SMOKE=1 runs one reduced chaos campaign: the full figure
# pipeline under injected cache/pool/stage/decode faults must emit
# byte-identical figures, reconcile every injected fault against a
# recovery action, and cover every site class. The verdict lands in
# results/CHAOS_report.json (uploaded by CI).
CCC_CHAOS_SMOKE=1 ./target/release/tepic-cc chaos --seed 42 >/dev/null
echo "figures byte-identical under fault injection; recovery reconciled"

echo "==> synthetic workload generation smoke"
# CCC_GEN_SMOKE=1 implies --campaign: generate the 10x tier (80 seeded
# programs), push it through the prepared-workload engine (compile,
# emulate, all five scheme encodings), run a fault campaign on the
# first program, and fail unless every op-mix category lands within
# 5 pp of the flavor target. The verdict lands in
# results/GEN_report.json (uploaded by CI).
CCC_GEN_DIR="${TMPDIR:-/tmp}/ccc-gen-smoke-$$"
CCC_GEN_SMOKE=1 ./target/release/tepic-cc gen --seed 42 --tier 10x \
    --out "$CCC_GEN_DIR" >/dev/null
rm -rf "$CCC_GEN_DIR"
echo "generated 10x tier calibrated within 5 pp; pipeline + campaign clean"

echo "==> simd feature build + tests"
# The AVX2 gather path is off by default; build and test the huffman
# and core crates with it on so the feature can't rot. The kernels
# runtime-detect AVX2, so this is safe on any x86-64 (and the scalar
# fallback keeps other arches green).
cargo test -q -p tinker-huffman -p ccc-core --features tinker-huffman/simd,ccc-core/simd
echo "simd feature builds and passes tests"

echo "==> decode throughput smoke"
# Short measurement; exits non-zero on any decode regression floor:
# LUT slower than the bit-serial reference on the byte scheme, the
# stream scheme's interleaved throughput under CCC_DECODE_FLOOR x its
# sequential-LUT throughput (default 2.2 smoke / 2.5 full), or its
# aggregate decoded-output bandwidth under CCC_DECODE_AGG_FLOOR MB/s
# (default 1000). Also refreshes results/decode_throughput.txt and
# results/BENCH_decode.json.
CCC_DECODE_SMOKE=1 CCC_DECODE_FLOOR="${CCC_DECODE_FLOOR:-2.2}" \
    cargo bench -p ccc-bench --bench decode_throughput >/dev/null
echo "decode floors held (LUT >= reference, interleaved >= floor x LUT, >= 1 GB/s decoded)"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
