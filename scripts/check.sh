#!/usr/bin/env sh
# The full local gate: everything CI runs, in the same order.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
