#!/usr/bin/env sh
# The full local gate: everything CI runs, in the same order.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> golden snapshot suite"
cargo test -q --test golden

echo "==> warm-cache bench smoke"
# Cold run populates a scratch cache; the warm rerun must be served
# entirely from it (--assert-warm exits non-zero on any cache miss).
CCC_SMOKE_DIR="${TMPDIR:-/tmp}/ccc-bench-smoke-$$"
rm -rf "$CCC_SMOKE_DIR"
./target/release/tepic-cc bench --figures fig05 --cache-dir "$CCC_SMOKE_DIR" >/dev/null
./target/release/tepic-cc bench --figures fig05 --cache-dir "$CCC_SMOKE_DIR" --assert-warm >/dev/null
rm -rf "$CCC_SMOKE_DIR"
echo "warm rerun fully cache-served"

echo "==> trace/metrics reconciliation smoke (all five schemes)"
# CCC_TRACE_SMOKE=1 implies --check: each emitted Chrome trace must be
# well-formed JSON with every required pipeline-stage span present for
# that scheme (span-coverage gaps fail), causally well-formed span
# ids/parents, zero dropped events, and per-kind event totals that
# reconcile exactly with the metrics snapshot
# (results/METRICS_<scheme>.json).
CCC_TRACE_DIR="${TMPDIR:-/tmp}/ccc-trace-smoke-$$"
mkdir -p "$CCC_TRACE_DIR"
for scheme in byte stream stream_1 full tailored; do
    CCC_TRACE_SMOKE=1 ./target/release/tepic-cc trace --workload li --scheme "$scheme" \
        --out "$CCC_TRACE_DIR/trace-$scheme.json" >/dev/null
    [ -s "results/METRICS_$scheme.json" ] || {
        echo "missing results/METRICS_$scheme.json" >&2
        exit 1
    }
done
rm -rf "$CCC_TRACE_DIR"
echo "all five schemes reconcile with their metrics snapshots"

echo "==> chaos self-healing smoke"
# CCC_CHAOS_SMOKE=1 runs one reduced chaos campaign: the full figure
# pipeline under injected cache/pool/stage/decode faults must emit
# byte-identical figures, reconcile every injected fault against a
# recovery action, and cover every site class. The verdict lands in
# results/CHAOS_report.json (uploaded by CI).
CCC_CHAOS_SMOKE=1 ./target/release/tepic-cc chaos --seed 42 >/dev/null
echo "figures byte-identical under fault injection; recovery reconciled"

echo "==> synthetic workload generation smoke"
# CCC_GEN_SMOKE=1 implies --campaign: generate the 10x tier (80 seeded
# programs), push it through the prepared-workload engine (compile,
# emulate, all five scheme encodings), run a fault campaign on the
# first program, and fail unless every op-mix category lands within
# 5 pp of the flavor target. The verdict lands in
# results/GEN_report.json (uploaded by CI).
CCC_GEN_DIR="${TMPDIR:-/tmp}/ccc-gen-smoke-$$"
CCC_GEN_SMOKE=1 ./target/release/tepic-cc gen --seed 42 --tier 10x \
    --out "$CCC_GEN_DIR" >/dev/null
rm -rf "$CCC_GEN_DIR"
echo "generated 10x tier calibrated within 5 pp; pipeline + campaign clean"

echo "==> simd feature build + tests"
# The AVX2 gather path is off by default; build and test the huffman
# and core crates with it on so the feature can't rot. The kernels
# runtime-detect AVX2, so this is safe on any x86-64 (and the scalar
# fallback keeps other arches green).
cargo test -q -p tinker-huffman -p ccc-core --features tinker-huffman/simd,ccc-core/simd
echo "simd feature builds and passes tests"

echo "==> decode throughput smoke"
# Short measurement; exits non-zero on any decode regression floor:
# LUT slower than the bit-serial reference on the byte scheme, the
# stream scheme's interleaved throughput under CCC_DECODE_FLOOR x its
# sequential-LUT throughput (default 2.2 smoke / 2.5 full), or its
# aggregate decoded-output bandwidth under CCC_DECODE_AGG_FLOOR MB/s
# (default 1000). Also refreshes results/decode_throughput.txt and
# results/BENCH_decode.json.
CCC_DECODE_SMOKE=1 CCC_DECODE_FLOOR="${CCC_DECODE_FLOOR:-2.2}" \
    cargo bench -p ccc-bench --bench decode_throughput >/dev/null
echo "decode floors held (LUT >= reference, interleaved >= floor x LUT, >= 1 GB/s decoded)"

echo "==> perf history + regression sentinel smoke"
# DESIGN.md §16 end-to-end (CCC_PERF_SMOKE=0 skips on very slow hosts):
# two genuine back-to-back runs into a scratch ledger must pass
# `perf --check`, an injected 2x slowdown must fail it, and
# `perf --attr` must reconstruct a span forest whose per-stage rollups
# reconcile exactly with the engine's stage timers.
if [ "${CCC_PERF_SMOKE:-1}" = "1" ]; then
CCC_PERF_DIR="${TMPDIR:-/tmp}/ccc-perf-smoke-$$"
mkdir -p "$CCC_PERF_DIR"
# Warm the artifact cache off the ledger so both measured runs have the
# same (warm) shape — a cold+warm pair is bimodal and would make the
# baselines meaningless.
CCC_NO_LEDGER=1 ./target/release/tepic-cc bench --figures fig05 \
    --cache-dir "$CCC_PERF_DIR/cache" >/dev/null
CCC_LEDGER="$CCC_PERF_DIR/ledger.jsonl" ./target/release/tepic-cc bench \
    --figures fig05 --cache-dir "$CCC_PERF_DIR/cache" >/dev/null
CCC_LEDGER="$CCC_PERF_DIR/ledger.jsonl" ./target/release/tepic-cc bench \
    --figures fig05 --cache-dir "$CCC_PERF_DIR/cache" >/dev/null
./target/release/tepic-cc perf --check --ledger "$CCC_PERF_DIR/ledger.jsonl"
echo "two genuine back-to-back runs pass the sentinel"
./target/release/tepic-cc perf --inject-slowdown 2.0 \
    --ledger "$CCC_PERF_DIR/ledger.jsonl" >/dev/null
if ./target/release/tepic-cc perf --check \
    --ledger "$CCC_PERF_DIR/ledger.jsonl" >/dev/null 2>&1; then
    echo "sentinel MISSED an injected 2x slowdown" >&2
    exit 1
fi
echo "injected 2x slowdown caught (non-zero exit)"
CCC_NO_LEDGER=1 ./target/release/tepic-cc perf --attr >/dev/null
[ -s "results/PERF_attr.txt" ] || {
    echo "missing results/PERF_attr.txt" >&2
    exit 1
}
rm -rf "$CCC_PERF_DIR"
echo "span attribution reconciles with the engine stage timers"
else
echo "skipped (CCC_PERF_SMOKE=0)"
fi

echo "==> serve daemon smoke (tepic-ccd + loadgen)"
# CCC_SERVE_SMOKE=0 skips on very slow hosts. Boots the daemon on an
# ephemeral port, fires a seeded mixed hot/cold loadgen burst at it
# (--verify re-fetches every hot combo and asserts the daemon's bytes
# are identical to the warmup responses AND to the locally recomputed
# one-shot pipeline artifacts), enforces loose floors (req/s, hot p99,
# zero errors), then --shutdown drains the daemon gracefully: the
# drain ack must arrive, post-drain jobs must be refused, and the
# daemon process must exit 0. results/BENCH_serve.json is refreshed
# (uploaded by CI).
if [ "${CCC_SERVE_SMOKE:-1}" = "1" ]; then
CCC_SERVE_DIR="${TMPDIR:-/tmp}/ccc-serve-smoke-$$"
mkdir -p "$CCC_SERVE_DIR"
./target/release/tepic-ccd --cache-dir "$CCC_SERVE_DIR/cache" \
    --port-file "$CCC_SERVE_DIR/port" >/dev/null &
CCC_SERVE_PID=$!
i=0
while [ ! -s "$CCC_SERVE_DIR/port" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "tepic-ccd never wrote its port file" >&2
        kill "$CCC_SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
CCC_LEDGER="$CCC_SERVE_DIR/ledger.jsonl" ./target/release/tepic-cc loadgen \
    --addr "$(cat "$CCC_SERVE_DIR/port")" --requests 200 --conns 4 --seed 42 \
    --verify --shutdown --min-rps 20 --max-hot-p99-ns 2000000000
wait "$CCC_SERVE_PID" || {
    echo "tepic-ccd exited non-zero after drain" >&2
    exit 1
}
[ -s "results/BENCH_serve.json" ] || {
    echo "missing results/BENCH_serve.json" >&2
    exit 1
}
rm -rf "$CCC_SERVE_DIR"
echo "daemon served the burst warm-byte-identical and drained cleanly (exit 0)"
else
echo "skipped (CCC_SERVE_SMOKE=0)"
fi

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
